//! The durable artifact store: atomic writes, checksummed checkpoint
//! frames, and generational retention with corruption-tolerant resume
//! (DESIGN.md §14).
//!
//! PRs 4–5 made the detection *runtime* survive panics, hangs, and
//! deadlines, but every durable artifact was still written with a bare
//! `std::fs::write`: a crash mid-write (or a torn sector) corrupts the
//! *only* checkpoint and silently destroys resumability. This module is
//! the sanctioned answer, and the `durable-io` xtask lint bans raw
//! persistent writes everywhere else:
//!
//! * [`atomic_write`] — temp file in the target directory → fsync the
//!   file → rename over the destination → fsync the directory. A reader
//!   sees either the old bytes or the new bytes, never a mixture.
//! * [`encode_frame`] / [`decode_frame`] — a hand-rolled CRC32 integrity
//!   envelope (`rejecto-ckpt-frame/v1 <len> <crc32>\n<payload>`) around
//!   the checkpoint JSON. Decoding rejects any single byte flip,
//!   truncation, or appended garbage, and names the offending byte
//!   offset.
//! * [`CheckpointStore`] — generational retention: each productive round
//!   writes `<stem>.gen-<round>.json`, a framed `<stem>.manifest` is
//!   rewritten last (the commit point), and old generations are pruned
//!   beyond a keep budget. [`CheckpointStore::load_latest_valid`] walks
//!   generations newest-first past corrupt frames, recording each skip
//!   as a [`RuntimeError::CheckpointCorrupt`], so one mangled file costs
//!   one round of progress, never the run.
//!
//! Fault injection ([`crate::FaultPlan`] forms `torn_write@round=N` and
//! `bit_flip@round=N`, consumed through [`crate::StoreFaults`]) mangles
//! a just-written generation deterministically, which is how the xtask
//! harness and CI prove the fallback chain end-to-end.

use crate::checkpoint::Checkpoint;
use crate::faults::{Mangle, StoreFaults};
use crate::runtime::RuntimeError;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Magic header naming the integrity-frame format.
pub const FRAME_MAGIC: &str = "rejecto-ckpt-frame/v1";

/// Magic `format` value of the generation manifest document.
pub const MANIFEST_FORMAT: &str = "rejecto-ckpt-manifest";

/// Manifest schema version this build writes and reads.
pub const MANIFEST_VERSION: u64 = 1;

/// Default number of checkpoint generations retained (`--checkpoint-keep`).
pub const DEFAULT_CHECKPOINT_KEEP: usize = 3;

/// A structured durable-store failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level I/O operation failed.
    Io {
        /// Path of the artifact involved.
        path: String,
        /// The protocol step that failed (`create temp`, `rename`, ...).
        op: &'static str,
        /// The underlying error, rendered.
        message: String,
    },
    /// An artifact exists but failed its integrity check.
    Corrupt {
        /// Path of the corrupt artifact.
        path: String,
        /// Byte offset of the first offending byte.
        offset: usize,
        /// What failed (magic, length, checksum, payload parse).
        message: String,
    },
    /// Every checkpoint generation of a stem was corrupt or missing.
    NoValidGeneration {
        /// The checkpoint stem whose chain was exhausted.
        stem: String,
        /// How many generations were examined and rejected.
        skipped: usize,
    },
    /// An artifact's size exceeds the store's `max_checkpoint_bytes`
    /// budget. On save the oversized frame is never written; on load the
    /// size is gated on file metadata *before* the bytes are read, so a
    /// hostile multi-gigabyte artifact cannot balloon memory.
    OverBudget {
        /// Path of the over-budget artifact.
        path: String,
        /// The configured byte budget.
        limit: u64,
        /// The artifact's (or encoded frame's) size in bytes.
        observed: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, message } => {
                write!(f, "{path}: {op} failed: {message}")
            }
            StoreError::Corrupt { path, offset, message } => {
                write!(f, "{path}: corrupt at byte {offset}: {message}")
            }
            StoreError::NoValidGeneration { stem, skipped } => write!(
                f,
                "{stem}: no valid checkpoint generation ({skipped} candidate(s) \
                 corrupt or unreadable)"
            ),
            StoreError::OverBudget { path, limit, observed } => write!(
                f,
                "{path}: checkpoint size {observed} exceeds the {limit}-byte budget"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for RuntimeError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io { path, op, message } => RuntimeError::StoreFailed {
                path,
                op: op.to_string(),
                message,
            },
            StoreError::Corrupt { path, offset, message } => {
                RuntimeError::CheckpointCorrupt { path, offset, message }
            }
            StoreError::NoValidGeneration { stem, skipped } => RuntimeError::StoreFailed {
                path: stem,
                op: "resolve".to_string(),
                message: format!(
                    "no valid checkpoint generation ({skipped} candidate(s) corrupt \
                     or unreadable)"
                ),
            },
            StoreError::OverBudget { limit, observed, .. } => RuntimeError::ResourceExhausted {
                resource: "checkpoint bytes",
                limit,
                observed,
            },
        }
    }
}

// --- CRC32 (IEEE 802.3 polynomial, reflected table-driven form) ---------

/// The byte-at-a-time lookup table for the reflected polynomial
/// `0xEDB88320`, built once on first use.
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = u32::try_from(n).expect("table index is below 256");
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the standard zlib/PNG checksum. Hand-rolled:
/// the store must stay dependency-free, and 20 lines of table-driven CRC
/// beat a crates.io supply chain for auditable durability.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = u8::try_from((crc ^ u32::from(b)) & 0xFF).expect("masked to one byte");
        crc = table[usize::from(idx)] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// --- the integrity frame ------------------------------------------------

/// Why a byte buffer is not a valid integrity frame. `offset` is the
/// first offending byte: where a mismatching or unexpected byte sits, the
/// end of the buffer for truncations, the payload start for checksum
/// mismatches (the corruption is somewhere inside the checksummed span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset of the first offending byte.
    pub offset: usize,
    /// What was wrong there.
    pub message: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

/// Wraps `payload` in the integrity envelope:
/// `rejecto-ckpt-frame/v1 <len> <crc32-hex>\n` followed by the payload
/// bytes, exactly `len` of them. The header is ASCII so a corrupted file
/// is still diagnosable with `head -1`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let header = format!("{FRAME_MAGIC} {} {:08x}\n", payload.len(), crc32(payload));
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unwraps an integrity frame, returning the payload slice.
///
/// # Errors
///
/// [`FrameError`] naming the first offending byte offset: a bad magic,
/// an unparsable length or checksum field, a truncated payload, trailing
/// garbage, or a checksum mismatch. Any single byte flip anywhere in the
/// frame lands in one of those arms (CRC32 detects all burst errors up
/// to 32 bits, and every header corruption breaks the header grammar or
/// the declared length/checksum).
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8], FrameError> {
    let magic = FRAME_MAGIC.as_bytes();
    for (i, &want) in magic.iter().chain(std::iter::once(&b' ')).enumerate() {
        match bytes.get(i) {
            Some(&got) if got == want => {}
            Some(_) => {
                return Err(FrameError {
                    offset: i,
                    message: format!("not a `{FRAME_MAGIC}` frame header"),
                })
            }
            None => {
                return Err(FrameError {
                    offset: bytes.len(),
                    message: "truncated inside the frame header".to_string(),
                })
            }
        }
    }
    let mut at = magic.len() + 1;

    let len_start = at;
    while matches!(bytes.get(at), Some(b) if b.is_ascii_digit()) {
        at += 1;
    }
    if at == len_start {
        return Err(FrameError {
            offset: at,
            message: "expected a decimal payload length".to_string(),
        });
    }
    let len_text =
        std::str::from_utf8(&bytes[len_start..at]).expect("ascii digits are valid utf-8");
    let payload_len: usize = len_text.parse().map_err(|_| FrameError {
        offset: len_start,
        message: format!("payload length `{len_text}` overflows usize"),
    })?;

    match bytes.get(at) {
        Some(b' ') => at += 1,
        Some(_) => {
            return Err(FrameError {
                offset: at,
                message: "expected a space before the checksum".to_string(),
            })
        }
        None => {
            return Err(FrameError {
                offset: bytes.len(),
                message: "truncated before the checksum".to_string(),
            })
        }
    }

    let crc_start = at;
    while at < crc_start + 8 {
        match bytes.get(at) {
            // Canonical lowercase only: accepting `A`–`F` would make the
            // 0x20 bit of a checksum letter semantically invisible, so a
            // single-bit flip there could pass validation.
            Some(b) if b.is_ascii_digit() || (b'a'..=b'f').contains(b) => at += 1,
            Some(_) => {
                return Err(FrameError {
                    offset: at,
                    message: "expected 8 lowercase hex digits of crc32".to_string(),
                })
            }
            None => {
                return Err(FrameError {
                    offset: bytes.len(),
                    message: "truncated inside the checksum".to_string(),
                })
            }
        }
    }
    let crc_text =
        std::str::from_utf8(&bytes[crc_start..at]).expect("ascii hex digits are valid utf-8");
    let declared =
        u32::from_str_radix(crc_text, 16).expect("eight hex digits fit in u32");

    match bytes.get(at) {
        Some(b'\n') => at += 1,
        Some(_) => {
            return Err(FrameError {
                offset: at,
                message: "expected a newline ending the frame header".to_string(),
            })
        }
        None => {
            return Err(FrameError {
                offset: bytes.len(),
                message: "truncated before the end of the frame header".to_string(),
            })
        }
    }

    let payload = &bytes[at..];
    if payload.len() < payload_len {
        return Err(FrameError {
            offset: bytes.len(),
            message: format!(
                "truncated payload: header declares {payload_len} byte(s), found {}",
                payload.len()
            ),
        });
    }
    if payload.len() > payload_len {
        return Err(FrameError {
            offset: at + payload_len,
            message: format!(
                "{} byte(s) of trailing garbage after the framed payload",
                payload.len() - payload_len
            ),
        });
    }
    let actual = crc32(payload);
    if actual != declared {
        return Err(FrameError {
            offset: at,
            message: format!(
                "checksum mismatch: header declares {declared:08x}, payload hashes \
                 to {actual:08x}"
            ),
        });
    }
    Ok(payload)
}

// --- the atomic write protocol ------------------------------------------

/// Distinguishes concurrent temp files from one process; the pid handles
/// concurrent processes.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path, op: &'static str, e: &std::io::Error) -> StoreError {
    StoreError::Io { path: path.display().to_string(), op, message: e.to_string() }
}

/// Writes `bytes` to `path` atomically: temp file in the target
/// directory → fsync the file → rename over `path` → fsync the
/// directory. A crash at any point leaves either the previous contents
/// or the new contents — never a prefix, never a mixture. This is the
/// only sanctioned way to produce a persistent artifact (the
/// `durable-io` lint bans bare `std::fs::write`/`File::create` outside
/// this module).
///
/// # Errors
///
/// [`StoreError::Io`] naming the protocol step that failed; the temp
/// file is removed best-effort on any failure after its creation.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let Some(file_name) = path.file_name() else {
        return Err(StoreError::Io {
            path: path.display().to_string(),
            op: "resolve",
            message: "path has no file name component".to_string(),
        });
    };
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = parent.join(format!(
        ".{}.tmp.{}.{seq}",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let write_and_sync = || -> Result<(), StoreError> {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "create temp", &e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, "write temp", &e))?;
        f.sync_all().map_err(|e| io_err(&tmp, "sync temp", &e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", &e))?;
        Ok(())
    };
    if let Err(e) = write_and_sync() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }

    // Publish the rename: without a directory fsync a crash can forget
    // the new directory entry even though the file data is durable.
    // Opening a directory read-only for fsync is a unix affordance.
    #[cfg(unix)]
    {
        let dir = File::open(parent).map_err(|e| io_err(parent, "open dir", &e))?;
        dir.sync_all().map_err(|e| io_err(parent, "sync dir", &e))?;
    }
    Ok(())
}

// --- the generational checkpoint store ----------------------------------

/// A resolved resume source: the newest valid checkpoint plus the audit
/// trail of everything skipped on the way to it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreResume {
    /// The newest checkpoint that decoded and parsed cleanly.
    pub checkpoint: Checkpoint,
    /// The file it came from.
    pub path: PathBuf,
    /// One [`RuntimeError::CheckpointCorrupt`] per newer generation (or
    /// manifest) that was skipped, newest first. Empty when the newest
    /// generation was used directly.
    pub skipped: Vec<RuntimeError>,
}

impl StoreResume {
    /// Whether resume had to fall back past at least one corrupt artifact.
    pub fn fell_back(&self) -> bool {
        !self.skipped.is_empty()
    }
}

/// The generational checkpoint store for one stem path.
///
/// `--checkpoint <stem>` writes `<stem>.gen-<round>.json` after every
/// productive round plus a framed `<stem>.manifest` naming the live
/// generations; `--resume <stem>` loads the newest generation whose
/// frame and JSON both validate, falling back generation-by-generation.
/// A plain pre-generational checkpoint file at `<stem>` itself (framed
/// or legacy raw JSON) still resumes, so old artifacts keep working.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    stem: PathBuf,
    keep: usize,
    faults: StoreFaults,
    obs: Option<rejecto_obs::Obs>,
    limit: Option<u64>,
}

impl CheckpointStore {
    /// A store over `stem` retaining [`DEFAULT_CHECKPOINT_KEEP`]
    /// generations, with no faults armed and no metrics attached.
    pub fn new(stem: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            stem: stem.into(),
            keep: DEFAULT_CHECKPOINT_KEEP,
            faults: StoreFaults::default(),
            obs: None,
            limit: None,
        }
    }

    /// Retains `keep` generations (clamped to at least 1).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Arms the store-level faults of a plan (`torn_write@round=N`,
    /// `bit_flip@round=N`): the matching generation is mangled right
    /// after encoding, before it reaches disk.
    #[must_use]
    pub fn with_faults(mut self, faults: StoreFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a metrics registry: fallbacks and corrupt-skip tallies
    /// land in the volatile `ckpt/*` counters.
    #[must_use]
    pub fn with_obs(mut self, obs: rejecto_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Arms a `max_checkpoint_bytes` budget
    /// ([`crate::ResourceBudget::max_checkpoint_bytes`]): saves refuse to
    /// write a larger frame, and loads refuse (on file metadata, before
    /// reading) to pull a larger artifact into memory. `None` disarms.
    #[must_use]
    pub fn with_limit(mut self, limit: Option<u64>) -> Self {
        self.limit = limit;
        self
    }

    /// The stem every artifact name derives from.
    pub fn stem(&self) -> &Path {
        &self.stem
    }

    /// `<stem>.gen-<round>.json`, the generation written after `round`.
    pub fn generation_path(&self, round: usize) -> PathBuf {
        sibling(&self.stem, &format!(".gen-{round}.json"))
    }

    /// `<stem>.manifest`, the framed document naming live generations.
    pub fn manifest_path(&self) -> PathBuf {
        sibling(&self.stem, ".manifest")
    }

    /// Persists `ckpt` as the generation for its round count: writes the
    /// generation file atomically, rewrites the manifest (the commit
    /// point — a crash in between leaves the previous manifest naming
    /// only fully-written generations), then prunes generations beyond
    /// the keep budget.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a write step fails. Pruning is
    /// best-effort: a surviving stale file is garbage, not corruption.
    pub fn save(&self, ckpt: &Checkpoint) -> Result<(), StoreError> {
        let round = ckpt.rounds;
        let gen_path = self.generation_path(round);
        let payload = format!("{}\n", ckpt.to_json());
        let mut bytes = encode_frame(payload.as_bytes());
        self.check_budget(
            &gen_path,
            u64::try_from(bytes.len()).expect("frame size fits in u64"),
        )?;
        if let Some(mangle) = self.faults.take_mangle(round) {
            apply_mangle(&mut bytes, mangle);
        }
        atomic_write(&gen_path, &bytes)?;

        let mut generations = self.live_generations();
        if !generations.contains(&round) {
            generations.push(round);
        }
        generations.sort_unstable();
        let prune: Vec<usize> = if generations.len() > self.keep {
            generations.drain(..generations.len() - self.keep).collect()
        } else {
            Vec::new()
        };
        self.write_manifest(&generations)?;
        for old in prune {
            let _ = std::fs::remove_file(self.generation_path(old));
        }
        Ok(())
    }

    /// Resolves the newest valid checkpoint for this stem (module docs:
    /// manifest first, then a directory scan, then the plain stem file),
    /// skipping corrupt generations newest-first and recording each skip.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoValidGeneration`] when generations exist but all
    /// fail validation; [`StoreError::Corrupt`] when only a plain stem
    /// file exists and it fails; [`StoreError::Io`] when nothing
    /// resumable exists at all.
    pub fn load_latest_valid(&self) -> Result<StoreResume, StoreError> {
        let mut skipped: Vec<RuntimeError> = Vec::new();
        let manifest_path = self.manifest_path();
        let mut candidates: Option<Vec<usize>> = None;

        if manifest_path.exists() {
            match self.read_manifest() {
                Ok(generations) => candidates = Some(generations),
                Err(e) => {
                    // A corrupt manifest degrades to a directory scan —
                    // the generations themselves are still individually
                    // verifiable.
                    self.count_skip();
                    skipped.push(e.into());
                    candidates = Some(self.scan_generations());
                }
            }
        } else if !self.scan_generations().is_empty() {
            candidates = Some(self.scan_generations());
        }

        let Some(mut generations) = candidates else {
            // No generational artifacts: fall back to a plain (framed or
            // legacy raw-JSON) checkpoint file at the stem itself.
            return self.load_plain();
        };

        generations.sort_unstable();
        for &round in generations.iter().rev() {
            let path = self.generation_path(round);
            match self.load_generation(&path) {
                Ok(checkpoint) => {
                    if !skipped.is_empty() {
                        if let Some(obs) = &self.obs {
                            obs.volatile_incr("ckpt/fallbacks", 1);
                        }
                    }
                    return Ok(StoreResume { checkpoint, path, skipped });
                }
                Err(e) => {
                    self.count_skip();
                    skipped.push(e.into());
                }
            }
        }
        Err(StoreError::NoValidGeneration {
            stem: self.stem.display().to_string(),
            skipped: skipped.len(),
        })
    }

    /// Fails when `observed` bytes exceed the armed `max_checkpoint_bytes`
    /// budget, counting the refusal in the volatile `res/*` tallies.
    fn check_budget(&self, path: &Path, observed: u64) -> Result<(), StoreError> {
        if let Some(limit) = self.limit {
            if observed > limit {
                if let Some(obs) = &self.obs {
                    obs.volatile_incr("res/ckpt_over_budget", 1);
                }
                return Err(StoreError::OverBudget {
                    path: path.display().to_string(),
                    limit,
                    observed,
                });
            }
        }
        Ok(())
    }

    /// Reads and fully validates one generation file.
    fn load_generation(&self, path: &Path) -> Result<Checkpoint, StoreError> {
        let meta = std::fs::metadata(path).map_err(|e| io_err(path, "stat", &e))?;
        self.check_budget(path, meta.len())?;
        let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
        let payload = decode_frame(&bytes).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            offset: e.offset,
            message: e.message,
        })?;
        let text = std::str::from_utf8(payload).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            offset: e.valid_up_to(),
            message: "framed payload is not utf-8".to_string(),
        })?;
        Checkpoint::from_json(text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            offset: 0,
            message: format!("frame verifies but the payload does not parse: {e}"),
        })
    }

    /// Loads a pre-generational checkpoint at the stem path itself:
    /// framed if it carries the magic, legacy raw JSON otherwise.
    fn load_plain(&self) -> Result<StoreResume, StoreError> {
        let path = &self.stem;
        let meta = std::fs::metadata(path).map_err(|e| io_err(path, "stat", &e))?;
        self.check_budget(path, meta.len())?;
        let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
        let text = if bytes.starts_with(FRAME_MAGIC.as_bytes()) {
            let payload = decode_frame(&bytes).map_err(|e| StoreError::Corrupt {
                path: path.display().to_string(),
                offset: e.offset,
                message: e.message,
            })?;
            String::from_utf8_lossy(payload).into_owned()
        } else {
            String::from_utf8_lossy(&bytes).into_owned()
        };
        let checkpoint = Checkpoint::from_json(&text).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            offset: 0,
            message: e.to_string(),
        })?;
        Ok(StoreResume { checkpoint, path: path.clone(), skipped: Vec::new() })
    }

    /// The generation list to build the next manifest from: the current
    /// manifest when it verifies, a directory scan otherwise. Never
    /// fails — an unreadable manifest just means rediscovery.
    fn live_generations(&self) -> Vec<usize> {
        match self.read_manifest() {
            Ok(generations) => generations,
            Err(_) => self.scan_generations(),
        }
    }

    /// Generation rounds named by the manifest, verified and parsed.
    fn read_manifest(&self) -> Result<Vec<usize>, StoreError> {
        let path = self.manifest_path();
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, "read", &e))?;
        let corrupt = |offset: usize, message: String| StoreError::Corrupt {
            path: path.display().to_string(),
            offset,
            message,
        };
        let payload =
            decode_frame(&bytes).map_err(|e| corrupt(e.offset, e.message.clone()))?;
        let text = std::str::from_utf8(payload)
            .map_err(|e| corrupt(e.valid_up_to(), "framed payload is not utf-8".to_string()))?;
        let doc: serde_json::Value = serde_json::from_str(text)
            .map_err(|e| corrupt(0, format!("manifest is not valid JSON: {e}")))?;
        if doc.get("format").and_then(serde_json::Value::as_str) != Some(MANIFEST_FORMAT) {
            return Err(corrupt(0, format!("missing `format: {MANIFEST_FORMAT}` marker")));
        }
        if doc.get("version").and_then(serde_json::Value::as_u64) != Some(MANIFEST_VERSION) {
            return Err(corrupt(0, "unsupported manifest version".to_string()));
        }
        let rounds = doc
            .get("generations")
            .and_then(serde_json::Value::as_array)
            .ok_or_else(|| corrupt(0, "missing `generations` array".to_string()))?;
        rounds
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|r| usize::try_from(r).ok())
                    .ok_or_else(|| corrupt(0, "non-integer generation entry".to_string()))
            })
            .collect()
    }

    /// Rewrites the manifest naming exactly `generations`.
    fn write_manifest(&self, generations: &[usize]) -> Result<(), StoreError> {
        let doc = serde_json::json!({
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "generations": generations,
        });
        let payload = format!("{doc}\n");
        atomic_write(&self.manifest_path(), &encode_frame(payload.as_bytes()))
    }

    /// Generation rounds discovered by scanning the stem's directory for
    /// `<stem file name>.gen-<round>.json` siblings, ascending.
    fn scan_generations(&self) -> Vec<usize> {
        let parent = match self.stem.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let Some(stem_name) = self.stem.file_name().map(|n| n.to_string_lossy().into_owned())
        else {
            return Vec::new();
        };
        let prefix = format!("{stem_name}.gen-");
        let mut rounds: Vec<usize> = std::fs::read_dir(&parent)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name().to_string_lossy().into_owned();
                let middle = name.strip_prefix(&prefix)?.strip_suffix(".json")?;
                middle.parse::<usize>().ok()
            })
            .collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    fn count_skip(&self) {
        if let Some(obs) = &self.obs {
            obs.volatile_incr("ckpt/corrupt_skipped", 1);
        }
    }
}

/// `<stem's file name><suffix>` next to the stem.
fn sibling(stem: &Path, suffix: &str) -> PathBuf {
    let mut name = stem.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(suffix);
    stem.with_file_name(name)
}

/// Applies an injected mangle to a just-encoded frame, deterministically:
/// a torn write keeps only the first half of the bytes; a bit flip XORs
/// the low bit of the middle byte (inside the checksummed payload for
/// any real checkpoint, whose payload dwarfs the ~35-byte header).
fn apply_mangle(bytes: &mut Vec<u8>, mangle: Mangle) {
    match mangle {
        Mangle::TornWrite => {
            let keep = bytes.len() / 2;
            bytes.truncate(keep);
        }
        Mangle::BitFlip => {
            if bytes.is_empty() {
                return;
            }
            let at = bytes.len() / 2;
            bytes[at] ^= 0x01;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{DetectedGroup, DetectionReport};
    use kl::KParam;
    use rejection::{AugmentedGraphBuilder, NodeId};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rejecto-store-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        dir
    }

    fn sample_checkpoint(rounds: usize) -> Checkpoint {
        let mut b = AugmentedGraphBuilder::new(6);
        for u in 1..6u32 {
            b.add_friendship(NodeId(0), NodeId(u));
        }
        let g = b.build();
        let report = DetectionReport {
            groups: vec![DetectedGroup {
                nodes: vec![NodeId(2), NodeId(4)],
                acceptance_rate: 0.125,
                k: KParam::new(3, 2),
                round: 1,
            }],
            rounds,
            ..DetectionReport::default()
        };
        Checkpoint::capture(&g, &report)
    }

    #[test]
    fn crc32_matches_the_standard_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        for payload in [&b""[..], b"x", b"{\"a\":1}\n", &[0u8, 255, 10, 13, 0]] {
            let framed = encode_frame(payload);
            assert_eq!(decode_frame(&framed).expect("own frame decodes"), payload);
        }
    }

    #[test]
    fn truncation_is_rejected_with_the_end_offset() {
        let framed = encode_frame(b"hello checkpoint payload");
        for cut in 0..framed.len() {
            let err = decode_frame(&framed[..cut]).expect_err("truncated frame decodes");
            assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_at_the_first_extra_byte() {
        let framed = encode_frame(b"payload");
        let mut noisy = framed.clone();
        noisy.extend_from_slice(b"junk");
        let err = decode_frame(&noisy).expect_err("garbage accepted");
        assert_eq!(err.offset, framed.len());
        assert!(err.message.contains("trailing garbage"), "{}", err.message);
    }

    #[test]
    fn every_single_byte_change_is_detected() {
        let framed = encode_frame(b"the quick brown fox, checkpointed");
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_frame(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn checksum_mismatch_names_both_checksums() {
        let mut framed = encode_frame(b"payload-bytes");
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        let err = decode_frame(&framed).expect_err("corrupt payload accepted");
        assert!(err.message.contains("checksum mismatch"), "{}", err.message);
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmpdir("atomic");
        let path = dir.join("artifact.txt");
        atomic_write(&path, b"first").expect("first write succeeds");
        atomic_write(&path, b"second").expect("overwrite succeeds");
        assert_eq!(std::fs::read(&path).expect("artifact readable"), b"second");
        // No temp litter left behind.
        let stray = std::fs::read_dir(&dir)
            .expect("temp dir is listable")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(stray, 0, "temp files left in {}", dir.display());
    }

    #[test]
    fn save_then_load_round_trips_and_prunes() {
        let dir = tmpdir("generations");
        let store = CheckpointStore::new(dir.join("run.ckpt")).with_keep(2);
        for rounds in 1..=3 {
            store.save(&sample_checkpoint(rounds)).expect("save succeeds");
        }
        assert!(!store.generation_path(1).exists(), "generation 1 pruned");
        assert!(store.generation_path(2).exists());
        assert!(store.generation_path(3).exists());
        let resume = store.load_latest_valid().expect("latest generation loads");
        assert_eq!(resume.checkpoint.rounds, 3);
        assert_eq!(resume.path, store.generation_path(3));
        assert!(!resume.fell_back());
    }

    #[test]
    fn save_refuses_an_over_budget_frame_before_writing() {
        let dir = tmpdir("save-budget");
        let store = CheckpointStore::new(dir.join("run.ckpt")).with_limit(Some(16));
        let err = store.save(&sample_checkpoint(1)).expect_err("frame exceeds 16 bytes");
        match &err {
            StoreError::OverBudget { limit, observed, .. } => {
                assert_eq!(*limit, 16);
                assert!(*observed > 16);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        assert!(!store.generation_path(1).exists(), "refused frame must not be written");
        // The refusal maps into the runtime taxonomy as resource exhaustion.
        let rt: RuntimeError = err.into();
        match rt {
            RuntimeError::ResourceExhausted { resource, .. } => {
                assert_eq!(resource, "checkpoint bytes");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn load_gates_on_file_size_before_reading_the_bytes() {
        let dir = tmpdir("load-budget");
        let stem = dir.join("run.ckpt");
        CheckpointStore::new(&stem).save(&sample_checkpoint(1)).expect("save succeeds");
        CheckpointStore::new(&stem).save(&sample_checkpoint(2)).expect("save succeeds");
        // Reopening with a tiny budget rejects every on-disk generation at
        // the metadata gate; the chain exhausts to a typed error rather
        // than reading (let alone parsing) oversized bytes.
        let bounded = CheckpointStore::new(&stem).with_limit(Some(4));
        let err = bounded.load_latest_valid().expect_err("all generations over budget");
        match err {
            StoreError::NoValidGeneration { skipped, .. } => assert_eq!(skipped, 2),
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
        // A budget above the artifact size loads normally.
        let roomy = CheckpointStore::new(&stem).with_limit(Some(1 << 20));
        let resume = roomy.load_latest_valid().expect("within budget loads");
        assert_eq!(resume.checkpoint.rounds, 2);
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_the_previous_one() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::new(dir.join("run.ckpt"));
        store.save(&sample_checkpoint(1)).expect("save succeeds");
        store.save(&sample_checkpoint(2)).expect("save succeeds");
        // Flip one byte in the newest generation.
        let newest = store.generation_path(2);
        let mut bytes = std::fs::read(&newest).expect("generation readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, bytes).expect("fixture overwrite succeeds");

        let resume = store.load_latest_valid().expect("older generation survives");
        assert_eq!(resume.checkpoint.rounds, 1);
        assert!(resume.fell_back());
        assert_eq!(resume.skipped.len(), 1);
        match &resume.skipped[0] {
            RuntimeError::CheckpointCorrupt { path, message, .. } => {
                assert!(path.contains("gen-2"), "{path}");
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_manifest_degrades_to_a_directory_scan() {
        let dir = tmpdir("manifest");
        let store = CheckpointStore::new(dir.join("run.ckpt"));
        store.save(&sample_checkpoint(1)).expect("save succeeds");
        store.save(&sample_checkpoint(2)).expect("save succeeds");
        std::fs::write(store.manifest_path(), b"not a manifest at all")
            .expect("fixture overwrite succeeds");
        let resume = store.load_latest_valid().expect("scan finds the generations");
        assert_eq!(resume.checkpoint.rounds, 2);
        assert!(resume.fell_back(), "manifest corruption is a recorded fallback");
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let dir = tmpdir("exhausted");
        let store = CheckpointStore::new(dir.join("run.ckpt"));
        store.save(&sample_checkpoint(1)).expect("save succeeds");
        std::fs::write(store.generation_path(1), b"zeroed").expect("fixture overwrite succeeds");
        match store.load_latest_valid() {
            Err(StoreError::NoValidGeneration { skipped, .. }) => assert_eq!(skipped, 1),
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
    }

    #[test]
    fn empty_checkpoint_file_is_corrupt_not_a_parse_panic() {
        let dir = tmpdir("empty");
        let path = dir.join("empty.ckpt");
        std::fs::write(&path, b"").expect("fixture file is writable");
        let store = CheckpointStore::new(&path);
        match store.load_latest_valid() {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // And folded into the runtime taxonomy it is CheckpointCorrupt.
        let err = store.load_latest_valid().expect_err("empty file cannot resume");
        match RuntimeError::from(err) {
            RuntimeError::CheckpointCorrupt { .. } => {}
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn plain_legacy_raw_json_checkpoint_still_resumes() {
        let dir = tmpdir("legacy");
        let path = dir.join("legacy.ckpt");
        let ckpt = sample_checkpoint(1);
        std::fs::write(&path, format!("{}\n", ckpt.to_json())).expect("fixture file is writable");
        let resume = CheckpointStore::new(&path).load_latest_valid().expect("legacy loads");
        assert_eq!(resume.checkpoint, ckpt);
    }

    #[test]
    fn injected_torn_write_mangles_exactly_one_generation() {
        let dir = tmpdir("torn");
        let plan = crate::FaultPlan::parse("torn_write@round=2").expect("plan parses");
        let store = CheckpointStore::new(dir.join("run.ckpt"))
            .with_faults(StoreFaults::new(&plan));
        store.save(&sample_checkpoint(1)).expect("save succeeds");
        store.save(&sample_checkpoint(2)).expect("save succeeds");
        let resume = store.load_latest_valid().expect("fallback survives the tear");
        assert_eq!(resume.checkpoint.rounds, 1);
        assert_eq!(resume.skipped.len(), 1);
        match &resume.skipped[0] {
            RuntimeError::CheckpointCorrupt { message, .. } => {
                assert!(message.contains("truncated"), "{message}");
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn injected_bit_flip_is_detected_and_skipped() {
        let dir = tmpdir("flip");
        let plan = crate::FaultPlan::parse("bit_flip@round=2").expect("plan parses");
        let store = CheckpointStore::new(dir.join("run.ckpt"))
            .with_faults(StoreFaults::new(&plan));
        store.save(&sample_checkpoint(1)).expect("save succeeds");
        store.save(&sample_checkpoint(2)).expect("save succeeds");
        let resume = store.load_latest_valid().expect("fallback survives the flip");
        assert_eq!(resume.checkpoint.rounds, 1);
        assert!(resume.fell_back());
    }
}
