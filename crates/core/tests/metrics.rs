//! Determinism contract of the observability layer (DESIGN.md §13).
//!
//! Everything a detector records outside the `timings` section — spans,
//! counters, histograms — must be a pure function of `(graph, seeds,
//! termination)`: byte-identical JSON at every thread count, and
//! unchanged when an injected fault is absorbed by the retry path. The
//! `timings` section is the one sanctioned wall-clock sink, and
//! [`rejecto_obs::strip_timings`] must recover the deterministic
//! document from the full rendering.

use rejecto_core::{FaultPlan, IterativeDetector, RejectoConfig, Seeds, Termination};
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;

fn simulated_scenario(seed: u64) -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.02);
    let config = ScenarioConfig { num_fakes: 50, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, seed)
}

fn metrics_with(sim: &SimOutput, threads: usize, faults: Option<&str>) -> String {
    let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
    if let Some(spec) = faults {
        config.faults = FaultPlan::parse(spec).expect("valid fault spec");
    }
    let mut det = IterativeDetector::new(config);
    let obs = rejecto_obs::Obs::default();
    det.set_obs(obs.clone());
    det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(50));
    obs.deterministic_json()
}

#[test]
fn metrics_are_byte_identical_across_thread_counts() {
    let sim = simulated_scenario(11);
    let serial = metrics_with(&sim, 1, None);
    let parallel = metrics_with(&sim, 4, None);
    assert!(serial.contains("\"kl/moves_committed\""), "{serial}");
    assert!(serial.contains("\"detect/rounds\""), "{serial}");
    assert_eq!(serial, parallel, "metrics must not depend on the thread count");
}

#[test]
fn an_absorbed_panic_leaves_no_trace_in_the_metrics() {
    let sim = simulated_scenario(12);
    let clean = metrics_with(&sim, 2, None);
    let faulted = metrics_with(&sim, 2, Some("worker_panic@k=3"));
    assert_eq!(clean, faulted, "a retried panic must not leak into the metrics");
}

#[test]
fn strip_timings_recovers_the_deterministic_document() {
    let sim = simulated_scenario(13);
    let mut det = IterativeDetector::new(RejectoConfig::default());
    let obs = rejecto_obs::Obs::default();
    det.set_obs(obs.clone());
    det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(50));
    assert_eq!(rejecto_obs::strip_timings(&obs.to_json()), obs.deterministic_json());
}
