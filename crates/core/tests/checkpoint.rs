//! Property-based round-trip validation of checkpoint/resume.
//!
//! The contract under test: for ANY graph, halting a run after its first
//! pruning round, serializing the checkpoint through its JSON wire
//! format, and resuming from the deserialized copy must reproduce the
//! uninterrupted run's report exactly — at both `threads = 1` (the exact
//! serial path) and `threads = 4` (a real worker pool).

use proptest::prelude::*;
use rejecto_core::{Checkpoint, DetectionReport, IterativeDetector, RejectoConfig, Seeds, Termination};
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId};

/// Random small "spam-shaped" instance, mirroring `tests/prop.rs`: a
/// legit cluster with internal friendships, a fake cluster, attack edges,
/// and rejections from legit onto fakes (plus noise rejections).
fn spam_instance() -> impl Strategy<Value = AugmentedGraph> {
    (
        3usize..7,                                            // legit count
        2usize..5,                                            // fake count
        proptest::collection::vec((0u32..7, 0u32..7), 2..12), // legit friendships
        proptest::collection::vec((0u32..5, 0u32..5), 1..6),  // fake friendships
        proptest::collection::vec((0u32..7, 0u32..5), 0..3),  // attack edges
        proptest::collection::vec((0u32..7, 0u32..5), 2..10), // rejections legit→fake
        proptest::collection::vec((0u32..7, 0u32..7), 0..2),  // noise rejections
    )
        .prop_map(|(nl, nf, lf, ff, attack, rej, noise)| {
            let mut b = AugmentedGraphBuilder::new(nl + nf);
            let l = |x: u32| NodeId(x % nl as u32);
            let f = |x: u32| NodeId(nl as u32 + (x % nf as u32));
            for (u, v) in lf {
                b.add_friendship(l(u), l(v));
            }
            for (u, v) in ff {
                b.add_friendship(f(u), f(v));
            }
            for (u, v) in attack {
                b.add_friendship(l(u), f(v));
            }
            for (r, s) in rej {
                b.add_rejection(l(r), f(s));
            }
            for (r, s) in noise {
                b.add_rejection(l(r), l(s));
            }
            b.build()
        })
}

fn detector(threads: usize, max_rounds: Option<usize>) -> IterativeDetector {
    let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
    config.budget.max_rounds = max_rounds;
    IterativeDetector::new(config)
}

fn run(det: &IterativeDetector, g: &AugmentedGraph) -> DetectionReport {
    det.detect(g, &Seeds::default(), Termination::SuspectBudget(g.num_nodes()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → to_json → from_json → resume equals the uninterrupted run,
    /// for random graphs at threads ∈ {1, 4}. Graphs whose run finishes
    /// within the one-round budget exercise the degenerate case instead:
    /// the halted run must already equal the full run.
    #[test]
    fn json_round_trip_then_resume_matches_uninterrupted_run(g in spam_instance()) {
        for threads in [1usize, 4] {
            let full = run(&detector(threads, None), &g);
            let halted = run(&detector(threads, Some(1)), &g);

            if !halted.is_partial() {
                // The run needed at most one round; a checkpoint taken at
                // the budget boundary has nothing left to resume.
                prop_assert_eq!(&halted, &full, "threads={}", threads);
                continue;
            }

            let captured = Checkpoint::capture(&g, &halted);
            let json = captured.to_json();
            let restored = Checkpoint::from_json(&json);
            prop_assert!(
                restored.is_ok(),
                "checkpoint JSON did not round-trip: {:?}\n{}", restored.err(), json
            );
            let restored = restored.expect("checked is_ok above");
            prop_assert_eq!(&restored, &captured, "wire format lost information");

            let resumed = detector(threads, None)
                .resume(&g, &Seeds::default(), Termination::SuspectBudget(g.num_nodes()), &restored);
            prop_assert!(
                resumed.is_ok(),
                "resume rejected a checkpoint captured from its own graph: {:?}", resumed.err()
            );
            prop_assert_eq!(
                &resumed.expect("checked is_ok above"), &full,
                "threads={}: resumed run diverged from the uninterrupted run", threads
            );
        }
    }

    /// A captured checkpoint always validates against the graph it was
    /// captured from, and its structural summary matches the report.
    #[test]
    fn captured_checkpoint_validates_and_summarizes(g in spam_instance()) {
        let report = run(&detector(1, Some(1)), &g);
        let ckpt = Checkpoint::capture(&g, &report);
        prop_assert!(ckpt.validate_against(&g).is_ok());
        prop_assert_eq!(ckpt.num_nodes, g.num_nodes());
        prop_assert_eq!(ckpt.rounds, report.rounds);
        prop_assert_eq!(ckpt.groups.len(), report.groups.len());
    }
}
