//! Property-based validation of the MAAR heuristic against the exhaustive
//! oracle on small random graphs.

use proptest::prelude::*;
use rejecto_core::{exact, MaarSolver, RejectoConfig};
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId};

/// Random small "spam-shaped" instance: a legit cluster with internal
/// friendships, a fake cluster, some attack edges, and rejections from
/// legit onto fakes (plus optional noise rejections among legit).
fn spam_instance() -> impl Strategy<Value = AugmentedGraph> {
    (
        3usize..7,                                             // legit count
        2usize..5,                                             // fake count
        proptest::collection::vec((0u32..7, 0u32..7), 2..12),  // legit friendships
        proptest::collection::vec((0u32..5, 0u32..5), 1..6),   // fake friendships
        proptest::collection::vec((0u32..7, 0u32..5), 0..3),   // attack edges
        proptest::collection::vec((0u32..7, 0u32..5), 2..10),  // rejections legit→fake
        proptest::collection::vec((0u32..7, 0u32..7), 0..2),   // noise rejections
    )
        .prop_map(|(nl, nf, lf, ff, attack, rej, noise)| {
            let mut b = AugmentedGraphBuilder::new(nl + nf);
            let l = |x: u32| NodeId(x % nl as u32);
            let f = |x: u32| NodeId(nl as u32 + (x % nf as u32));
            for (u, v) in lf {
                b.add_friendship(l(u), l(v));
            }
            for (u, v) in ff {
                b.add_friendship(f(u), f(v));
            }
            for (u, v) in attack {
                b.add_friendship(l(u), f(v));
            }
            for (r, s) in rej {
                b.add_rejection(l(r), f(s));
            }
            for (r, s) in noise {
                b.add_rejection(l(r), l(s));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasibility: the heuristic's cut never beats the exhaustive
    /// optimum over its own feasible family (suspect regions within the
    /// size cap).
    #[test]
    fn heuristic_never_beats_the_oracle(g in spam_instance()) {
        let config = RejectoConfig { k_factor: 1.2, ..RejectoConfig::default() };
        let cap = (config.max_suspect_fraction * g.num_nodes() as f64).floor() as usize;
        if cap == 0 { return Ok(()); }
        let heur = MaarSolver::new(config).solve(&g, &[], &[]);
        if let (Some(h), Some((_, best_ac))) = (heur, exact::exact_maar_cut(&g, cap)) {
            prop_assert!(
                h.acceptance_rate >= best_ac - 1e-12,
                "heuristic beat the oracle: {} < {}", h.acceptance_rate, best_ac
            );
            prop_assert!(h.partition.suspect_count() <= cap);
        }
    }

    /// Completeness (unconstrained): with the size cap disabled, whenever
    /// the oracle finds a genuinely rejection-heavy cut (low AC), the
    /// k-sweep finds a cut of comparable quality.
    #[test]
    fn unconstrained_sweep_tracks_the_oracle(g in spam_instance()) {
        let config = RejectoConfig {
            k_factor: 1.2,
            max_suspect_fraction: 1.0,
            ..RejectoConfig::default()
        };
        let n = g.num_nodes();
        let heur = MaarSolver::new(config).solve(&g, &[], &[]);
        let oracle = exact::exact_maar_cut(&g, n - 1);
        match (heur, oracle) {
            (Some(h), Some((_, best_ac))) => {
                prop_assert!(h.acceptance_rate >= best_ac - 1e-12);
                // Local search should land close to the optimum on
                // instances this small.
                prop_assert!(
                    h.acceptance_rate <= best_ac + 0.34,
                    "heuristic too far from optimum: {} vs {}",
                    h.acceptance_rate, best_ac
                );
            }
            (None, Some((p, ac))) => {
                // Friendship-only "cuts" (AC ≈ 1) are rightly rejected as
                // not spam-shaped (positive objective for every k).
                prop_assert!(
                    ac > 0.9,
                    "heuristic missed a strong cut: AC {} on suspects {:?}",
                    ac, p.suspects()
                );
            }
            _ => {}
        }
    }

    /// Any cut the heuristic reports is internally consistent: its
    /// acceptance rate recomputes from the partition it returns.
    #[test]
    fn reported_rate_matches_partition(g in spam_instance()) {
        if let Some(cut) = MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]) {
            let recomputed = cut.partition.acceptance_rate().expect("cut carries requests");
            prop_assert!((recomputed - cut.acceptance_rate).abs() < 1e-12);
            let cap = (RejectoConfig::default().max_suspect_fraction
                * g.num_nodes() as f64)
                .floor() as usize;
            prop_assert!(cut.partition.suspect_count() <= cap);
        }
    }
}
