//! Deterministic fault-injection tests for the detector runtime.
//!
//! Every injected fault must yield one of exactly two outcomes — a clean
//! retry-equal report or a structured degraded/partial report — and never
//! a process abort. The injection specs here mirror the CI fault matrix
//! (`worker_panic@k=3`, `worker_panic@k=3:always`, `io_error@round=1`,
//! `deadline=<ms>`), and every scenario runs at `threads = 1` (the exact
//! serial path) and `threads = 4` (a real worker pool) with identical
//! results demanded of both.

use rejecto_core::{
    Checkpoint, Completion, DetectionReport, FaultPlan, InterruptReason, IterativeDetector,
    RejectoConfig, RuntimeError, Seeds, Termination,
};
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;

const FAKES: usize = 60;

fn simulated_scenario(seed: u64) -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.02);
    let config = ScenarioConfig { num_fakes: FAKES, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, seed)
}

fn config_with(threads: usize, spec: &str) -> RejectoConfig {
    let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
    config.faults = FaultPlan::parse(spec).expect("fault spec in this file parses");
    config
}

fn detect(sim: &SimOutput, config: RejectoConfig) -> DetectionReport {
    IterativeDetector::new(config).detect(
        &sim.graph,
        &Seeds::default(),
        Termination::SuspectBudget(FAKES),
    )
}

#[test]
fn one_shot_worker_panic_is_retried_to_the_clean_report() {
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let clean = detect(&sim, RejectoConfig { threads, ..RejectoConfig::default() });
        assert!(!clean.groups.is_empty(), "fixture must detect something");
        let faulted = detect(&sim, config_with(threads, "worker_panic@k=3"));
        assert_eq!(
            clean, faulted,
            "threads={threads}: a retried one-shot panic must leave no trace"
        );
        assert!(faulted.failures.is_empty(), "threads={threads}");
        assert_eq!(faulted.completion, Completion::Complete, "threads={threads}");
    }
}

#[test]
fn persistent_worker_panic_degrades_identically_across_thread_counts() {
    let sim = simulated_scenario(7);
    let serial = detect(&sim, config_with(1, "worker_panic@k=3:always"));
    assert!(
        serial.failures.iter().any(|f| matches!(
            f,
            RuntimeError::WorkerFailed { k_index: 3, .. }
        )),
        "persistent panic must surface as WorkerFailed{{k_index: 3}}: {:?}",
        serial.failures
    );
    // The failed sweep index is skipped deterministically, so the run
    // still completes and the degradation is identical in parallel.
    assert_eq!(serial.completion, Completion::Complete);
    let parallel = detect(&sim, config_with(4, "worker_panic@k=3:always"));
    assert_eq!(serial, parallel, "degraded reports differ across thread counts");
}

#[test]
fn injected_checkpoint_io_error_is_recorded_and_the_run_continues() {
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let clean = detect(&sim, RejectoConfig { threads, ..RejectoConfig::default() });

        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut sink = |ckpt: &Checkpoint| {
            checkpoints.push(ckpt.clone());
            Ok(())
        };
        let faulted = IterativeDetector::new(config_with(threads, "io_error@round=1"))
            .detect_with_checkpoints(
                &sim.graph,
                &Seeds::default(),
                Termination::SuspectBudget(FAKES),
                &mut sink,
            );

        assert_eq!(
            faulted.groups, clean.groups,
            "threads={threads}: a checkpoint write failure must not change detection"
        );
        assert_eq!(faulted.completion, Completion::Complete, "threads={threads}");
        assert!(
            faulted.failures.iter().any(|f| matches!(
                f,
                RuntimeError::CheckpointIo { round: 1, .. }
            )),
            "threads={threads}: expected CheckpointIo{{round: 1}}, got {:?}",
            faulted.failures
        );
        // Round 1's checkpoint was swallowed by the injected error; later
        // rounds (if any) still reach the sink.
        assert!(
            checkpoints.iter().all(|c| c.rounds != 1),
            "threads={threads}: the failed round-1 checkpoint leaked into the sink"
        );
    }
}

#[test]
fn injected_zero_deadline_yields_an_empty_partial_report() {
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let report = detect(&sim, config_with(threads, "deadline=0ms"));
        match &report.completion {
            Completion::Partial { completed_rounds, reason, .. } => {
                assert_eq!(*completed_rounds, 0, "threads={threads}");
                assert_eq!(*reason, InterruptReason::Deadline, "threads={threads}");
            }
            other => panic!("threads={threads}: expected Partial, got {other:?}"),
        }
        assert_eq!(report.rounds, 0, "threads={threads}");
        assert!(report.groups.is_empty(), "threads={threads}");
    }
}

/// A realistic (non-zero) injected deadline is scheduling-dependent, so
/// only well-formedness is asserted: the run either completes or reports a
/// deadline partial whose groups are all fully completed rounds.
#[test]
fn injected_short_deadline_never_aborts_and_stays_well_formed() {
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let report = detect(&sim, config_with(threads, "deadline=50ms"));
        match &report.completion {
            Completion::Complete => {}
            Completion::Partial { completed_rounds, reason, .. } => {
                assert_eq!(*completed_rounds, report.rounds, "threads={threads}");
                assert_eq!(*reason, InterruptReason::Deadline, "threads={threads}");
            }
            other => panic!("threads={threads}: unexpected completion {other:?}"),
        }
        // Groups are disjoint and each carries a completed round number.
        let mut seen = vec![false; sim.graph.num_nodes()];
        for group in &report.groups {
            assert!(group.round >= 1 && group.round <= report.rounds, "threads={threads}");
            for u in &group.nodes {
                assert!(!seen[u.index()], "threads={threads}: node {u} in two groups");
                seen[u.index()] = true;
            }
        }
    }
}

#[test]
fn combined_fault_plan_still_produces_the_clean_groups() {
    // A one-shot panic (retried away) plus a round-1 checkpoint failure
    // (recorded, not fatal): detection output must match the clean run,
    // with exactly the checkpoint failure on record.
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let clean = detect(&sim, RejectoConfig { threads, ..RejectoConfig::default() });
        let mut sink = |_: &Checkpoint| Ok(());
        let faulted =
            IterativeDetector::new(config_with(threads, "worker_panic@k=3,io_error@round=1"))
                .detect_with_checkpoints(
                    &sim.graph,
                    &Seeds::default(),
                    Termination::SuspectBudget(FAKES),
                    &mut sink,
                );
        assert_eq!(faulted.groups, clean.groups, "threads={threads}");
        assert_eq!(faulted.failures.len(), 1, "threads={threads}: {:?}", faulted.failures);
        assert!(matches!(
            &faulted.failures[0],
            RuntimeError::CheckpointIo { round: 1, .. }
        ));
    }
}

#[test]
fn kill_and_resume_under_a_round_budget_matches_the_uninterrupted_run() {
    let sim = simulated_scenario(7);
    for threads in [1, 4] {
        let full = detect(&sim, RejectoConfig { threads, ..RejectoConfig::default() });

        let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
        config.budget.max_rounds = Some(1);
        let halted = detect(&sim, config);
        assert!(halted.is_partial(), "threads={threads}: fixture needs >= 2 rounds");

        let json = Checkpoint::capture(&sim.graph, &halted).to_json();
        let restored = Checkpoint::from_json(&json).expect("checkpoint JSON round-trips");
        let resumed = IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() })
            .resume(
                &sim.graph,
                &Seeds::default(),
                Termination::SuspectBudget(FAKES),
                &restored,
            )
            .expect("checkpoint validates against its own graph");
        assert_eq!(resumed, full, "threads={threads}: resumed run diverged");
    }
}
