//! Tests for the pipeline-level `debug-invariants` checkers (compiled only
//! with `cargo test --features debug-invariants -p rejecto-core`): silent
//! on well-formed bookkeeping, panicking on corrupted state.
#![cfg(feature = "debug-invariants")]

use rejecto_core::invariants::{assert_partition_bookkeeping, assert_report_bookkeeping};
use rejecto_core::{DetectedGroup, DetectionReport, KParam};
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId, Partition, Region};

fn fixture() -> AugmentedGraph {
    let mut b = AugmentedGraphBuilder::new(5);
    b.add_friendship(NodeId(0), NodeId(1));
    b.add_friendship(NodeId(1), NodeId(2));
    b.add_friendship(NodeId(2), NodeId(3));
    b.add_rejection(NodeId(0), NodeId(4));
    b.add_rejection(NodeId(1), NodeId(4));
    b.build()
}

#[test]
fn partition_checker_accepts_consistent_counters() {
    let g = fixture();
    let mut p = Partition::all_legit(&g);
    p.switch(&g, NodeId(4));
    p.switch(&g, NodeId(3));
    p.switch(&g, NodeId(3)); // and back — counters must round-trip
    assert_partition_bookkeeping(&g, &p);
}

#[test]
#[should_panic(expected = "partition covers")]
fn partition_checker_catches_coverage_mismatch() {
    let g = fixture();
    let smaller = AugmentedGraphBuilder::new(3).build();
    let p = Partition::all_legit(&smaller);
    assert_partition_bookkeeping(&g, &p);
}

#[test]
#[should_panic(expected = "cross_rejections")]
fn partition_checker_catches_drifted_rejection_counter() {
    let g = fixture();
    // Build a partition whose suspect region receives rejections, against
    // the *wrong* graph view: from_fn derives counters over `g`, so to
    // corrupt them we recreate the region assignment on a graph missing
    // the rejection edges, then validate against the full graph.
    let mut b = AugmentedGraphBuilder::new(5);
    b.add_friendship(NodeId(0), NodeId(1));
    b.add_friendship(NodeId(1), NodeId(2));
    b.add_friendship(NodeId(2), NodeId(3));
    let no_rejections = b.build();
    let p = Partition::from_fn(&no_rejections, |u| {
        if u == NodeId(4) {
            Region::Suspect
        } else {
            Region::Legit
        }
    });
    assert_partition_bookkeeping(&g, &p);
}

fn group(round: usize, rate: f64, nodes: &[u32]) -> DetectedGroup {
    DetectedGroup {
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        acceptance_rate: rate,
        k: KParam::new(1, 1),
        round,
    }
}

#[test]
fn report_checker_accepts_disjoint_monotone_groups() {
    let g = fixture();
    let report = DetectionReport {
        groups: vec![group(1, 0.1, &[4]), group(2, 0.4, &[3])],
        rounds: 3,
        ..DetectionReport::default()
    };
    assert_report_bookkeeping(&g, &report);
}

#[test]
#[should_panic(expected = "detected in two groups")]
fn report_checker_catches_resurfacing_nodes() {
    let g = fixture();
    let report = DetectionReport {
        groups: vec![group(1, 0.1, &[4]), group(2, 0.4, &[4, 3])],
        rounds: 2,
        ..DetectionReport::default()
    };
    assert_report_bookkeeping(&g, &report);
}

#[test]
fn report_checker_tolerates_nonmonotone_rates() {
    // Non-decreasing per-round rates are a scenario-level expectation, not
    // an algorithm invariant: the k-sweep is a local search, so a later
    // round can legitimately surface a lower-rate pocket the earlier sweep
    // missed (random small graphs produce counterexamples).
    let g = fixture();
    let report = DetectionReport {
        groups: vec![group(1, 0.5, &[4]), group(2, 0.1, &[3])],
        rounds: 2,
        ..DetectionReport::default()
    };
    assert_report_bookkeeping(&g, &report);
}

#[test]
#[should_panic(expected = "acceptance rate out of range")]
fn report_checker_catches_invalid_rates() {
    let g = fixture();
    let report = DetectionReport {
        groups: vec![group(1, 1.5, &[4])],
        rounds: 1,
        ..DetectionReport::default()
    };
    assert_report_bookkeeping(&g, &report);
}
