//! Property-based validation of the durable artifact store (DESIGN.md
//! §14) and end-to-end crash-consistent resume.
//!
//! Contracts under test:
//!
//! * the CRC32 integrity frame round-trips every payload byte-exactly, and
//!   rejects ANY single bit flip, truncation, or appended garbage with the
//!   offending byte offset in the error;
//! * an empty or mangled checkpoint file surfaces as a structured
//!   `CheckpointCorrupt`, never a JSON parse panic;
//! * with the newest generation deliberately mangled (`torn_write@round=N`
//!   / `bit_flip@round=N`), resume falls back to the prior valid
//!   generation and the finished run is identical to an uninterrupted one,
//!   at `threads = 1` and `threads = 4`.

use proptest::prelude::*;
use rejecto_core::store::{atomic_write, decode_frame, encode_frame, CheckpointStore, StoreError};
use rejecto_core::{
    Checkpoint, DetectionReport, FaultPlan, IterativeDetector, RejectoConfig, RuntimeError, Seeds,
    StoreFaults, Termination,
};
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rejecto-store-it-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// Legit clique (0–3); fake group A (4–5) heavily rejected by legit; fake
/// group B (6–7) whitewashed behind A's self-rejections. Detection needs
/// multiple productive rounds here (A falls before B), so the store
/// accumulates a real generation chain to corrupt and fall back through.
fn multi_round_graph() -> AugmentedGraph {
    let mut b = AugmentedGraphBuilder::new(8);
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            b.add_friendship(NodeId(u), NodeId(v));
        }
    }
    b.add_friendship(NodeId(4), NodeId(5));
    b.add_friendship(NodeId(6), NodeId(7));
    b.add_friendship(NodeId(0), NodeId(4));
    b.add_friendship(NodeId(1), NodeId(6));
    for (r, s) in [(0, 5), (1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)] {
        b.add_rejection(NodeId(r), NodeId(s));
    }
    for (r, s) in [(6, 4), (6, 5), (7, 4), (7, 5)] {
        b.add_rejection(NodeId(r), NodeId(s));
    }
    b.add_rejection(NodeId(2), NodeId(6));
    b.add_rejection(NodeId(3), NodeId(7));
    b.add_rejection(NodeId(0), NodeId(7));
    b.build()
}

fn detector(threads: usize) -> IterativeDetector {
    IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() })
}

fn run_with_store(det: &IterativeDetector, g: &AugmentedGraph, store: &CheckpointStore)
    -> DetectionReport
{
    let mut sink =
        |ckpt: &Checkpoint| store.save(ckpt).map_err(std::io::Error::other);
    det.detect_with_checkpoints(g, &Seeds::default(), Termination::SuspectBudget(4), &mut sink)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for every payload.
    #[test]
    fn frame_round_trip_is_total(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let framed = encode_frame(&payload);
        let decoded = decode_frame(&framed);
        prop_assert!(decoded.is_ok(), "own frame rejected: {:?}", decoded.err());
        prop_assert_eq!(decoded.expect("checked is_ok above"), payload.as_slice());
    }

    /// Any single bit flip anywhere in the frame is rejected, and the
    /// reported offset stays inside the frame.
    #[test]
    fn any_single_bit_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let framed = encode_frame(&payload);
        let at = pos % framed.len();
        let mut bad = framed.clone();
        bad[at] ^= 1 << bit;
        let err = decode_frame(&bad).expect_err("flipped frame accepted");
        prop_assert!(
            err.offset <= framed.len(),
            "offset {} past frame end {} for flip at {at}", err.offset, framed.len()
        );
    }

    /// Any strict truncation is rejected; the offset never exceeds the
    /// truncated length (it points at the first missing or bad byte).
    #[test]
    fn any_truncation_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos in 0usize..4096,
    ) {
        let framed = encode_frame(&payload);
        let cut = pos % framed.len();
        let err = decode_frame(&framed[..cut]).expect_err("truncated frame accepted");
        prop_assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
    }

    /// Appended garbage is rejected, naming the first trailing byte.
    #[test]
    fn appended_garbage_is_rejected_with_its_offset(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let framed = encode_frame(&payload);
        let mut bad = framed.clone();
        bad.extend_from_slice(&garbage);
        let err = decode_frame(&bad).expect_err("frame with trailing garbage accepted");
        prop_assert_eq!(err.offset, framed.len(), "offset must name the first extra byte");
    }

    /// Atomic writes round-trip arbitrary bytes and fully replace prior
    /// contents (no blending, no partial visibility after return).
    #[test]
    fn atomic_write_round_trips_and_replaces(
        first in proptest::collection::vec(any::<u8>(), 0..512),
        second in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = tmpdir("prop-atomic");
        let path = dir.join("artifact.bin");
        atomic_write(&path, &first).expect("first atomic write succeeds");
        prop_assert_eq!(&std::fs::read(&path).expect("artifact readable"), &first);
        atomic_write(&path, &second).expect("second atomic write succeeds");
        prop_assert_eq!(&std::fs::read(&path).expect("artifact readable"), &second);
    }
}

/// Regression: a zero-length checkpoint file must yield a structured
/// `CheckpointCorrupt`, not a JSON parse panic (the pre-store resume path
/// fed `""` straight to the JSON parser).
#[test]
fn empty_checkpoint_file_resumes_as_checkpoint_corrupt() {
    let dir = tmpdir("empty");
    let path = dir.join("zero.ckpt");
    std::fs::write(&path, b"").expect("fixture file is writable");
    let err = CheckpointStore::new(&path)
        .load_latest_valid()
        .expect_err("an empty checkpoint cannot resume");
    match RuntimeError::from(err) {
        RuntimeError::CheckpointCorrupt { path, .. } => {
            assert!(path.contains("zero.ckpt"), "{path}");
        }
        other => panic!("expected CheckpointCorrupt, got {other}"),
    }
}

/// The whole crash-consistency property, in process: run with checkpoints
/// while injection mangles the newest generation, then resume from the
/// store. Resume must fall back to the surviving generation, record the
/// skip as a structured `CheckpointCorrupt`, and finish with a report
/// identical to the uninterrupted run — at 1 and 4 threads, for both
/// mangle forms.
#[test]
fn mangled_newest_generation_resumes_identically() {
    for spec in ["torn_write@round=2", "bit_flip@round=2"] {
        for threads in [1usize, 4] {
            let g = multi_round_graph();
            let clean = detector(threads).detect(
                &g,
                &Seeds::default(),
                Termination::SuspectBudget(4),
            );
            assert!(clean.groups.len() >= 2, "scenario must need multiple rounds");

            let form = spec.split('@').next().expect("split yields at least one part");
            let dir = tmpdir(&format!("e2e-{threads}-{form}"));
            let plan = FaultPlan::parse(spec).expect("spec is well-formed");
            let store = CheckpointStore::new(dir.join("run.ckpt"))
                .with_faults(StoreFaults::new(&plan));
            let faulted = run_with_store(&detector(threads), &g, &store);
            assert_eq!(faulted, clean, "{spec}: the mangle must not touch the live run");

            let resume = store.load_latest_valid().expect("an older generation survives");
            assert!(resume.fell_back(), "{spec}: resume must have skipped the mangled gen");
            assert_eq!(resume.skipped.len(), 1);
            assert!(
                matches!(&resume.skipped[0], RuntimeError::CheckpointCorrupt { .. }),
                "{spec}: skip must be CheckpointCorrupt, got {:?}",
                resume.skipped[0]
            );
            assert_eq!(resume.checkpoint.rounds, 1, "{spec}: fallback lands on round 1");

            let resumed = detector(threads)
                .resume(&g, &Seeds::default(), Termination::SuspectBudget(4), &resume.checkpoint)
                .expect("surviving generation resumes");
            assert_eq!(
                resumed, clean,
                "{spec} threads={threads}: fallback resume diverged from the clean run"
            );
        }
    }
}

/// Generational retention under a real run: `with_keep(1)` leaves exactly
/// the newest generation plus the manifest on disk.
#[test]
fn keep_budget_prunes_older_generations_during_a_run() {
    let g = multi_round_graph();
    let dir = tmpdir("keep");
    let store = CheckpointStore::new(dir.join("run.ckpt")).with_keep(1);
    let report = run_with_store(&detector(1), &g, &store);
    assert!(report.rounds >= 2, "scenario must need multiple rounds");
    assert!(!store.generation_path(1).exists(), "generation 1 must be pruned");
    let resume = store.load_latest_valid().expect("newest generation loads");
    assert!(!resume.fell_back());
    assert!(resume.checkpoint.rounds >= 2);
}

/// Obs counters reconcile with the injected faults: one mangled
/// generation → `ckpt/corrupt_skipped` = 1 and `ckpt/fallbacks` = 1, both
/// in the volatile section of the metrics document so the deterministic
/// prefix stays byte-comparable.
#[test]
fn fallback_counters_reconcile_with_injected_faults() {
    let g = multi_round_graph();
    let dir = tmpdir("obs");
    let plan = FaultPlan::parse("bit_flip@round=2").expect("spec is well-formed");
    let store = CheckpointStore::new(dir.join("run.ckpt"))
        .with_faults(StoreFaults::new(&plan));
    run_with_store(&detector(1), &g, &store);

    let obs = rejecto_obs::Obs::default();
    let reader = CheckpointStore::new(dir.join("run.ckpt")).with_obs(obs.clone());
    let resume = reader.load_latest_valid().expect("fallback succeeds");
    assert!(resume.fell_back());
    let doc = obs.to_json();
    assert!(doc.contains("\"ckpt/corrupt_skipped\": 1"), "{doc}");
    assert!(doc.contains("\"ckpt/fallbacks\": 1"), "{doc}");
    let stripped = rejecto_obs::strip_timings(&doc);
    assert!(
        !stripped.contains("ckpt/"),
        "fallback counters must be volatile (stripped with timings): {stripped}"
    );
}

/// Every generation mangled → `NoValidGeneration` with full skip
/// accounting, never a panic or a half-parsed resume.
#[test]
fn exhausted_generation_chain_is_a_typed_error() {
    let g = multi_round_graph();
    let dir = tmpdir("exhausted");
    let store = CheckpointStore::new(dir.join("run.ckpt"));
    let report = run_with_store(&detector(1), &g, &store);
    assert!(report.rounds >= 2);
    // Corrupt every generation on disk.
    for round in 1..=report.rounds {
        let p = store.generation_path(round);
        if p.exists() {
            std::fs::write(&p, b"not a frame").expect("fixture overwrite succeeds");
        }
    }
    match store.load_latest_valid() {
        Err(StoreError::NoValidGeneration { skipped, .. }) => {
            assert!(skipped >= 2, "each corrupt generation must be counted, got {skipped}")
        }
        other => panic!("expected NoValidGeneration, got {other:?}"),
    }
}
