//! Serial-vs-parallel equivalence of the full iterative detector.
//!
//! The `k` sweep's worker pool must be invisible in the output: the
//! reduction is ordered by sweep index, every per-`k` KL run is a pure
//! function of `(graph, k, seeds, placement)`, and the pruning loop is
//! driven entirely by the per-round winner. So `threads = 1` (the exact
//! serial code path, no pool at all) and `threads = 4` must produce
//! *identical* `DetectionReport`s — same groups, same rounds, same
//! bit-exact acceptance rates — on a full simulated scenario, not just a
//! hand-built toy graph. `cargo xtask check --determinism` enforces the
//! same contract in-process on every CI run.

use rejecto_core::{DetectionReport, IterativeDetector, RejectoConfig, Seeds, Termination};
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;

fn simulated_scenario(seed: u64) -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.02);
    let config = ScenarioConfig { num_fakes: 50, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, seed)
}

fn detect_with_threads(sim: &SimOutput, threads: usize) -> DetectionReport {
    let config = RejectoConfig { threads, ..RejectoConfig::default() };
    IterativeDetector::new(config).detect(
        &sim.graph,
        &Seeds::default(),
        Termination::SuspectBudget(50),
    )
}

/// Field-by-field comparison with bit-exact float checks, so a mismatch
/// names the offending group instead of dumping two whole reports.
fn assert_reports_identical(serial: &DetectionReport, parallel: &DetectionReport, label: &str) {
    assert_eq!(serial.rounds, parallel.rounds, "{label}: round counts differ");
    assert_eq!(serial.groups.len(), parallel.groups.len(), "{label}: group counts differ");
    for (i, (s, p)) in serial.groups.iter().zip(&parallel.groups).enumerate() {
        assert_eq!(s.nodes, p.nodes, "{label}: group {i} members differ");
        assert_eq!(s.round, p.round, "{label}: group {i} rounds differ");
        assert_eq!(s.k, p.k, "{label}: group {i} winning k differs");
        assert_eq!(
            s.acceptance_rate.to_bits(),
            p.acceptance_rate.to_bits(),
            "{label}: group {i} acceptance rates differ ({} vs {})",
            s.acceptance_rate,
            p.acceptance_rate
        );
    }
    assert_eq!(
        serial.completion, parallel.completion,
        "{label}: completion states differ"
    );
    assert_eq!(serial.failures, parallel.failures, "{label}: failure records differ");
    // Belt and braces: the derived PartialEq must agree with the
    // field-by-field walk above.
    assert_eq!(serial, parallel, "{label}: reports differ");
}

#[test]
fn four_threads_match_serial_on_a_simulated_scenario() {
    let sim = simulated_scenario(11);
    let serial = detect_with_threads(&sim, 1);
    assert!(
        !serial.groups.is_empty(),
        "scenario must actually exercise the detector (no groups found)"
    );
    let parallel = detect_with_threads(&sim, 4);
    assert_reports_identical(&serial, &parallel, "threads=4");
}

#[test]
fn oversubscribed_pool_matches_serial() {
    // More workers than sweep points: the pool clamps to the job count and
    // the result must still be identical.
    let sim = simulated_scenario(23);
    let serial = detect_with_threads(&sim, 1);
    let parallel = detect_with_threads(&sim, 64);
    assert_reports_identical(&serial, &parallel, "threads=64");
}

#[test]
fn auto_thread_count_matches_serial() {
    // threads = 0 resolves to available parallelism; whatever the machine
    // offers, the answer must not move.
    let sim = simulated_scenario(37);
    let serial = detect_with_threads(&sim, 1);
    let auto = detect_with_threads(&sim, 0);
    assert_reports_identical(&serial, &auto, "threads=auto");
}
