use socialgraph::{Graph, NodeId};

/// The rejection-augmented social graph `G = (V, F, R⃗)`.
///
/// Friendships are undirected and deduplicated. Rejections are directed:
/// `⟨u, v⟩` records that `u` rejected `v`'s friend request (multiple
/// rejections between the same ordered pair collapse to one edge, per
/// §III-A). Both rejection directions are indexed so cut bookkeeping and
/// gain updates are `O(deg)`.
///
/// Construct with [`AugmentedGraphBuilder`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AugmentedGraph {
    friends: Vec<Vec<NodeId>>,
    /// `rejected_by_me[u]` = users whose requests `u` rejected.
    rejected_by_me: Vec<Vec<NodeId>>,
    /// `rejectors_of_me[u]` = users who rejected `u`'s requests.
    rejectors_of_me: Vec<Vec<NodeId>>,
    num_friendships: u64,
    num_rejections: u64,
}

impl AugmentedGraph {
    /// Number of users.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.friends.len()
    }

    /// Number of undirected friendships `|F|`.
    #[inline]
    pub fn num_friendships(&self) -> u64 {
        self.num_friendships
    }

    /// Number of directed rejection edges `|R⃗|`.
    #[inline]
    pub fn num_rejections(&self) -> u64 {
        self.num_rejections
    }

    /// Sorted friends of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn friends(&self, u: NodeId) -> &[NodeId] {
        &self.friends[u.index()]
    }

    /// Sorted list of users whose requests `u` rejected (out-edges of `u`
    /// in `R⃗`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn rejected_by(&self, u: NodeId) -> &[NodeId] {
        &self.rejected_by_me[u.index()]
    }

    /// Sorted list of users who rejected `u`'s requests (in-edges of `u`
    /// in `R⃗`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn rejectors_of(&self, u: NodeId) -> &[NodeId] {
        &self.rejectors_of_me[u.index()]
    }

    /// Friendship degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn friend_degree(&self, u: NodeId) -> usize {
        self.friends[u.index()].len()
    }

    /// Number of rejections `u` received.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn rejections_received(&self, u: NodeId) -> usize {
        self.rejectors_of_me[u.index()].len()
    }

    /// Whether `u` and `v` are friends.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn are_friends(&self, u: NodeId, v: NodeId) -> bool {
        self.friends[u.index()].binary_search(&v).is_ok()
    }

    /// Whether the rejection edge `⟨u, v⟩` (u rejected v) exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn has_rejection(&self, u: NodeId, v: NodeId) -> bool {
        self.rejected_by_me[u.index()].binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let n = u32::try_from(self.friends.len()).expect("node count fits the u32 id space");
        (0..n).map(NodeId)
    }

    /// Per-node request *rejection ratio*: rejections received over
    /// (friendships + rejections received). This is the individual-user
    /// feature that naive spam filters threshold on (and that collusion
    /// defeats — see the `fig13` experiment).
    ///
    /// Returns `None` for a user with no friendships and no rejections.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn rejection_ratio(&self, u: NodeId) -> Option<f64> {
        let f = self.friend_degree(u) as f64; // xtask-allow: lossy-cast: a degree is < 2^53 and converts exactly
        let r = self.rejections_received(u) as f64; // xtask-allow: lossy-cast: a degree is < 2^53 and converts exactly
        if f + r == 0.0 {
            None
        } else {
            Some(r / (f + r))
        }
    }

    /// The induced augmented subgraph on the nodes where `keep[u]` is true,
    /// densely relabeled. Returns the subgraph plus `original`, mapping each
    /// new id to its old id. Used when pruning detected spammer groups
    /// "with their links and rejections" (§IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.num_nodes()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (AugmentedGraph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.num_nodes(), "keep mask has wrong length");
        let mut new_id = vec![u32::MAX; self.num_nodes()];
        let mut original = Vec::new();
        for u in self.nodes() {
            if keep[u.index()] {
                new_id[u.index()] =
                    u32::try_from(original.len()).expect("kept node count fits the u32 id space");
                original.push(u);
            }
        }
        let mut b = AugmentedGraphBuilder::new(original.len());
        for (i, &orig) in original.iter().enumerate() {
            let i = NodeId::from_index(i);
            for &v in self.friends(orig) {
                let nv = new_id[v.index()];
                if nv != u32::MAX && orig < v {
                    b.add_friendship(i, NodeId(nv));
                }
            }
            for &v in self.rejected_by(orig) {
                let nv = new_id[v.index()];
                if nv != u32::MAX {
                    b.add_rejection(i, NodeId(nv));
                }
            }
        }
        (b.build(), original)
    }

    /// The friendship graph alone, as a [`socialgraph::Graph`] (used to hand
    /// the sterilized graph to SybilRank in the defense-in-depth pipeline).
    pub fn friendship_graph(&self) -> Graph {
        let mut b = socialgraph::GraphBuilder::new(self.num_nodes());
        for u in self.nodes() {
            for &v in self.friends(u) {
                if u < v {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

/// Incremental constructor for [`AugmentedGraph`].
#[derive(Debug, Clone, Default)]
pub struct AugmentedGraphBuilder {
    friends: Vec<Vec<NodeId>>,
    rejected_by_me: Vec<Vec<NodeId>>,
    rejectors_of_me: Vec<Vec<NodeId>>,
}

impl AugmentedGraphBuilder {
    /// Creates a builder for `num_nodes` users with no edges.
    pub fn new(num_nodes: usize) -> Self {
        AugmentedGraphBuilder {
            friends: vec![Vec::new(); num_nodes],
            rejected_by_me: vec![Vec::new(); num_nodes],
            rejectors_of_me: vec![Vec::new(); num_nodes],
        }
    }

    /// Preloads all edges of `g` as friendships.
    pub fn from_graph(g: &Graph) -> Self {
        let mut b = AugmentedGraphBuilder::new(g.num_nodes());
        for (u, v) in g.edges() {
            b.friends[u.index()].push(v);
            b.friends[v.index()].push(u);
        }
        b
    }

    /// Number of users.
    pub fn num_nodes(&self) -> usize {
        self.friends.len()
    }

    /// Appends `extra` isolated users, returning the first new id.
    pub fn add_nodes(&mut self, extra: usize) -> NodeId {
        let first = self.friends.len();
        self.friends.resize(first + extra, Vec::new());
        self.rejected_by_me.resize(first + extra, Vec::new());
        self.rejectors_of_me.resize(first + extra, Vec::new());
        NodeId::from_index(first)
    }

    /// Records the friendship `(u, v)` (an accepted request). Duplicates and
    /// self-loops are dropped at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_friendship(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.friends.len() && v.index() < self.friends.len(),
            "friendship ({u}, {v}) out of range for {} nodes",
            self.friends.len()
        );
        if u == v {
            return;
        }
        self.friends[u.index()].push(v);
        self.friends[v.index()].push(u);
    }

    /// Records the rejection `⟨rejector, rejectee⟩`: `rejector` rejected a
    /// request sent by `rejectee`. Duplicates of the same ordered pair and
    /// self-rejections are dropped at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_rejection(&mut self, rejector: NodeId, rejectee: NodeId) {
        assert!(
            rejector.index() < self.friends.len() && rejectee.index() < self.friends.len(),
            "rejection ({rejector}, {rejectee}) out of range for {} nodes",
            self.friends.len()
        );
        if rejector == rejectee {
            return;
        }
        self.rejected_by_me[rejector.index()].push(rejectee);
        self.rejectors_of_me[rejectee.index()].push(rejector);
    }

    /// Whether the friendship `(u, v)` has already been recorded (either
    /// endpoint order). Loaders use this to give hostile inputs a typed
    /// duplicate-edge rejection instead of silently collapsing at build
    /// time. `O(deg)` probe over the unsorted pending list.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn contains_friendship(&self, u: NodeId, v: NodeId) -> bool {
        self.friends[u.index()].contains(&v)
    }

    /// Whether the directed rejection `⟨rejector, rejectee⟩` has already
    /// been recorded. Loaders use this to reject duplicate rejection lines
    /// and friend+rejection conflicts with a typed error. `O(deg)` probe
    /// over the unsorted pending list.
    ///
    /// # Panics
    ///
    /// Panics if `rejector` is out of range.
    pub fn contains_rejection(&self, rejector: NodeId, rejectee: NodeId) -> bool {
        self.rejected_by_me[rejector.index()].contains(&rejectee)
    }

    /// Finalizes into an immutable [`AugmentedGraph`], sorting and
    /// deduplicating all adjacency lists.
    ///
    /// Edge counting uses checked arithmetic end to end: a hostile input
    /// cannot wrap the degree sums into silently-wrong totals.
    pub fn build(mut self) -> AugmentedGraph {
        let mut num_friendships = 0u64;
        for list in &mut self.friends {
            list.sort_unstable();
            list.dedup();
            let deg = u64::try_from(list.len()).expect("degree fits in u64");
            num_friendships =
                num_friendships.checked_add(deg).expect("friendship degree sum fits in u64");
        }
        let mut num_rejections = 0u64;
        for list in &mut self.rejected_by_me {
            list.sort_unstable();
            list.dedup();
            let deg = u64::try_from(list.len()).expect("degree fits in u64");
            num_rejections =
                num_rejections.checked_add(deg).expect("rejection degree sum fits in u64");
        }
        for list in &mut self.rejectors_of_me {
            list.sort_unstable();
            list.dedup();
        }
        AugmentedGraph {
            friends: self.friends,
            rejected_by_me: self.rejected_by_me,
            rejectors_of_me: self.rejectors_of_me,
            num_friendships: num_friendships / 2,
            num_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AugmentedGraph {
        // 0-1 friends, 1-2 friends; 0 rejected 3; 3 rejected 2.
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(1), NodeId(2));
        b.add_rejection(NodeId(0), NodeId(3));
        b.add_rejection(NodeId(3), NodeId(2));
        b.build()
    }

    #[test]
    fn counts_friendships_and_rejections() {
        let g = sample();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_friendships(), 2);
        assert_eq!(g.num_rejections(), 2);
    }

    #[test]
    fn rejection_directions_are_indexed_both_ways() {
        let g = sample();
        assert_eq!(g.rejected_by(NodeId(0)), &[NodeId(3)]);
        assert_eq!(g.rejectors_of(NodeId(3)), &[NodeId(0)]);
        assert!(g.has_rejection(NodeId(0), NodeId(3)));
        assert!(!g.has_rejection(NodeId(3), NodeId(0)));
    }

    #[test]
    fn duplicate_rejections_collapse() {
        let mut b = AugmentedGraphBuilder::new(2);
        b.add_rejection(NodeId(0), NodeId(1));
        b.add_rejection(NodeId(0), NodeId(1));
        let g = b.build();
        assert_eq!(g.num_rejections(), 1);
    }

    #[test]
    fn opposite_direction_is_a_distinct_edge() {
        let mut b = AugmentedGraphBuilder::new(2);
        b.add_rejection(NodeId(0), NodeId(1));
        b.add_rejection(NodeId(1), NodeId(0));
        let g = b.build();
        assert_eq!(g.num_rejections(), 2);
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut b = AugmentedGraphBuilder::new(1);
        b.add_friendship(NodeId(0), NodeId(0));
        b.add_rejection(NodeId(0), NodeId(0));
        let g = b.build();
        assert_eq!(g.num_friendships(), 0);
        assert_eq!(g.num_rejections(), 0);
    }

    #[test]
    fn rejection_ratio_matches_by_hand() {
        let g = sample();
        // Node 2: 1 friend, 1 rejection received → 0.5.
        assert_eq!(g.rejection_ratio(NodeId(2)), Some(0.5));
        // Node 1: friends only → 0.
        assert_eq!(g.rejection_ratio(NodeId(1)), Some(0.0));
    }

    #[test]
    fn rejection_ratio_of_isolate_is_none() {
        let g = AugmentedGraphBuilder::new(1).build();
        assert_eq!(g.rejection_ratio(NodeId(0)), None);
    }

    #[test]
    fn from_graph_preloads_friendships() {
        let host = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let g = AugmentedGraphBuilder::from_graph(&host).build();
        assert_eq!(g.num_friendships(), 2);
        assert!(g.are_friends(NodeId(0), NodeId(1)));
    }

    #[test]
    fn induced_subgraph_drops_pruned_edges() {
        let g = sample();
        // Keep nodes 0, 1, 2 (drop 3): rejections touching 3 vanish.
        let (sub, original) = g.induced_subgraph(&[true, true, true, false]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_friendships(), 2);
        assert_eq!(sub.num_rejections(), 0);
        assert_eq!(original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_rejections() {
        let g = sample();
        let (sub, original) = g.induced_subgraph(&[true, false, true, true]);
        // 0 rejected 3 and 3 rejected 2 both survive (0, 2, 3 kept).
        assert_eq!(sub.num_rejections(), 2);
        assert_eq!(original, vec![NodeId(0), NodeId(2), NodeId(3)]);
        // Relabeled: old 3 is new 2; old 0 is new 0.
        assert!(sub.has_rejection(NodeId(0), NodeId(2)));
    }

    #[test]
    fn friendship_graph_roundtrip() {
        let g = sample();
        let fg = g.friendship_graph();
        assert_eq!(fg.num_edges(), 2);
        assert!(fg.has_edge(NodeId(0), NodeId(1)));
        assert!(fg.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn add_nodes_extends_all_indices() {
        let mut b = AugmentedGraphBuilder::new(1);
        let first = b.add_nodes(2);
        assert_eq!(first, NodeId(1));
        b.add_rejection(NodeId(2), NodeId(0));
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.rejectors_of(NodeId(0)), &[NodeId(2)]);
    }
}
