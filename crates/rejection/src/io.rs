//! Persistence for rejection-augmented graphs.
//!
//! A plain-text line format, one edge per line:
//!
//! ```text
//! # rejecto augmented graph v1: nodes=<n>
//! F <u> <v>     # undirected friendship
//! R <u> <v>     # u rejected v's request
//! ```
//!
//! OSN operators export their (friendship, rejection) logs in this shape
//! and run the detector offline; the CLI's `detect` subcommand consumes it.

use crate::{AugmentedGraph, AugmentedGraphBuilder, NodeId};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

pub use socialgraph::io::LoadStats;

/// Errors from reading an augmented-graph file.
#[derive(Debug)]
#[non_exhaustive]
pub enum AugmentedIoError {
    /// The header line is missing or malformed.
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// An edge line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token (or `"<end of line>"` for a truncated line).
        token: String,
        /// The unparsable content.
        content: String,
    },
    /// An edge referenced a node outside the declared node count.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        node: u32,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An error annotated with the path of the file it came from.
    InFile {
        /// Path of the file being read.
        file: String,
        /// The underlying error (carries the 1-based line and token for
        /// parse errors).
        source: Box<AugmentedIoError>,
    },
}

impl AugmentedIoError {
    /// Wraps the error with the path of the file it came from. Callers
    /// that open files themselves attach the path at the call site, since
    /// the readers only see an anonymous `Read`.
    #[must_use]
    pub fn in_file(self, file: impl Into<String>) -> AugmentedIoError {
        AugmentedIoError::InFile { file: file.into(), source: Box::new(self) }
    }
}

impl fmt::Display for AugmentedIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugmentedIoError::BadHeader { found } => {
                write!(f, "missing or malformed header line, found {found:?}")
            }
            AugmentedIoError::Parse { line, token, content } => {
                write!(f, "cannot parse edge line {line}: bad token {token:?} in {content:?}")
            }
            AugmentedIoError::NodeOutOfRange { line, node } => {
                write!(f, "node id {node} out of range on line {line}")
            }
            AugmentedIoError::Io(e) => write!(f, "augmented-graph i/o error: {e}"),
            AugmentedIoError::InFile { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for AugmentedIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AugmentedIoError::Io(e) => Some(e),
            AugmentedIoError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AugmentedIoError {
    fn from(e: std::io::Error) -> Self {
        AugmentedIoError::Io(e)
    }
}

const HEADER_PREFIX: &str = "# rejecto augmented graph v1: nodes=";

/// Writes `g` in the v1 text format.
///
/// # Errors
///
/// Returns [`AugmentedIoError::Io`] on write failures.
pub fn write_augmented<W: Write>(g: &AugmentedGraph, writer: W) -> Result<(), AugmentedIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{HEADER_PREFIX}{}", g.num_nodes())?;
    for u in g.nodes() {
        for &v in g.friends(u) {
            if u < v {
                writeln!(w, "F {u} {v}")?;
            }
        }
        for &v in g.rejected_by(u) {
            writeln!(w, "R {u} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a v1 augmented-graph file.
///
/// # Errors
///
/// Returns a parse/header/range error as appropriate, or
/// [`AugmentedIoError::Io`] on read failures.
pub fn read_augmented<R: Read>(reader: R) -> Result<AugmentedGraph, AugmentedIoError> {
    let (g, _) = read_augmented_impl(reader, false)?;
    Ok(g)
}

/// Like [`read_augmented`], but malformed and out-of-range edge lines are
/// skipped and counted instead of failing the whole load. The header stays
/// strict — without a trustworthy node count nothing downstream is
/// meaningful — and I/O errors remain fatal. The returned [`LoadStats`]
/// lets the caller report how much input was dropped.
///
/// # Errors
///
/// Returns [`AugmentedIoError::BadHeader`] on a missing/malformed header
/// and [`AugmentedIoError::Io`] on read failures.
pub fn read_augmented_lenient<R: Read>(
    reader: R,
) -> Result<(AugmentedGraph, LoadStats), AugmentedIoError> {
    read_augmented_impl(reader, true)
}

enum EdgeKind {
    Friend,
    Reject,
}

/// Parses one non-comment edge line against the declared node count `n`,
/// naming the offending token on failure.
fn parse_augmented_line(
    trimmed: &str,
    lineno: usize,
    n: usize,
) -> Result<(EdgeKind, u32, u32), AugmentedIoError> {
    let bad = |token: &str| AugmentedIoError::Parse {
        line: lineno,
        token: token.to_string(),
        content: trimmed.to_string(),
    };
    let mut parts = trimmed.split_whitespace();
    let kind = match parts.next() {
        Some("F") => EdgeKind::Friend,
        Some("R") => EdgeKind::Reject,
        Some(other) => return Err(bad(other)),
        None => return Err(bad("<end of line>")),
    };
    let id = |tok: Option<&str>| -> Result<u32, AugmentedIoError> {
        match tok {
            Some(t) => t.parse().map_err(|_| bad(t)),
            None => Err(bad("<end of line>")),
        }
    };
    let u = id(parts.next())?;
    let v = id(parts.next())?;
    for x in [u, v] {
        if x as usize >= n {
            return Err(AugmentedIoError::NodeOutOfRange { line: lineno, node: x });
        }
    }
    Ok((kind, u, v))
}

fn read_augmented_impl<R: Read>(
    reader: R,
    lenient: bool,
) -> Result<(AugmentedGraph, LoadStats), AugmentedIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| AugmentedIoError::BadHeader { found: "<empty file>".to_string() })?;
    let n: usize = header
        .strip_prefix(HEADER_PREFIX)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| AugmentedIoError::BadHeader { found: header.clone() })?;

    let mut b = AugmentedGraphBuilder::new(n);
    let mut stats = LoadStats::default();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // parse_augmented_line only yields Parse / NodeOutOfRange, both of
        // which lenient mode downgrades to a skip; Io stays fatal above.
        match parse_augmented_line(trimmed, lineno, n) {
            Ok((EdgeKind::Friend, u, v)) => b.add_friendship(NodeId(u), NodeId(v)),
            Ok((EdgeKind::Reject, u, v)) => b.add_rejection(NodeId(u), NodeId(v)),
            Err(e) => {
                if lenient {
                    stats.record(lineno);
                    continue;
                }
                return Err(e);
            }
        }
    }
    Ok((b.build(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AugmentedGraphBuilder;

    fn sample() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(2), NodeId(3));
        b.add_rejection(NodeId(1), NodeId(2));
        b.add_rejection(NodeId(3), NodeId(0));
        b.build()
    }

    #[test]
    fn roundtrips_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g, g2);
    }

    #[test]
    fn preserves_rejection_direction() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert!(g2.has_rejection(NodeId(1), NodeId(2)));
        assert!(!g2.has_rejection(NodeId(2), NodeId(1)));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_augmented("F 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::BadHeader { .. }));
    }

    #[test]
    fn rejects_unknown_edge_kind() {
        let data = format!("{HEADER_PREFIX}3\nX 0 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "X");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn parse_error_names_the_bad_endpoint_token() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nR 1 banana\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { line, token, content } => {
                assert_eq!(line, 3);
                assert_eq!(token, "banana");
                assert_eq!(content, "R 1 banana");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_line_reports_end_of_line() {
        let data = format!("{HEADER_PREFIX}3\nF 0\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { token, .. } => assert_eq!(token, "<end of line>"),
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn in_file_prepends_the_path_and_chains_the_source() {
        use std::error::Error;
        let data = format!("{HEADER_PREFIX}3\nX 0 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err().in_file("attack.rjg");
        let msg = err.to_string();
        assert!(msg.starts_with("attack.rjg: "), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(err.source().is_some());
    }

    #[test]
    fn lenient_mode_skips_and_counts_bad_lines() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nX 0 1\nR 1 2\nF 0 99\nR 9 bad\n");
        let (g, stats) = read_augmented_lenient(data.as_bytes()).expect("lenient load");
        assert_eq!(g.num_friendships(), 1);
        assert_eq!(g.num_rejections(), 1);
        assert_eq!(stats.skipped_lines, 3);
        assert_eq!(stats.first_skipped, Some(3));
    }

    #[test]
    fn lenient_mode_still_rejects_a_bad_header() {
        let err = read_augmented_lenient("F 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::BadHeader { .. }));
    }

    #[test]
    fn lenient_mode_matches_strict_on_clean_input() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let strict = read_augmented(buf.as_slice()).expect("strict load");
        let (lenient, stats) = read_augmented_lenient(buf.as_slice()).expect("lenient load");
        assert_eq!(strict, lenient);
        assert!(!stats.is_degraded());
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let data = format!("{HEADER_PREFIX}2\nF 0 5\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn tolerates_comments_and_blanks() {
        let data = format!("{HEADER_PREFIX}2\n\n# comment\nF 0 1\n");
        let g = read_augmented(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_friendships(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = AugmentedGraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g2.num_nodes(), 0);
    }
}
