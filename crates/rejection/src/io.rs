//! Persistence for rejection-augmented graphs.
//!
//! A plain-text line format, one edge per line:
//!
//! ```text
//! # rejecto augmented graph v1: nodes=<n>
//! F <u> <v>     # undirected friendship
//! R <u> <v>     # u rejected v's request
//! ```
//!
//! OSN operators export their (friendship, rejection) logs in this shape
//! and run the detector offline; the CLI's `detect` subcommand consumes it.

use crate::{AugmentedGraph, AugmentedGraphBuilder, NodeId};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from reading an augmented-graph file.
#[derive(Debug)]
#[non_exhaustive]
pub enum AugmentedIoError {
    /// The header line is missing or malformed.
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// An edge line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The unparsable content.
        content: String,
    },
    /// An edge referenced a node outside the declared node count.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        node: u32,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for AugmentedIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugmentedIoError::BadHeader { found } => {
                write!(f, "missing or malformed header line, found {found:?}")
            }
            AugmentedIoError::Parse { line, content } => {
                write!(f, "cannot parse edge line {line}: {content:?}")
            }
            AugmentedIoError::NodeOutOfRange { line, node } => {
                write!(f, "node id {node} out of range on line {line}")
            }
            AugmentedIoError::Io(e) => write!(f, "augmented-graph i/o error: {e}"),
        }
    }
}

impl std::error::Error for AugmentedIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AugmentedIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AugmentedIoError {
    fn from(e: std::io::Error) -> Self {
        AugmentedIoError::Io(e)
    }
}

const HEADER_PREFIX: &str = "# rejecto augmented graph v1: nodes=";

/// Writes `g` in the v1 text format.
///
/// # Errors
///
/// Returns [`AugmentedIoError::Io`] on write failures.
pub fn write_augmented<W: Write>(g: &AugmentedGraph, writer: W) -> Result<(), AugmentedIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{HEADER_PREFIX}{}", g.num_nodes())?;
    for u in g.nodes() {
        for &v in g.friends(u) {
            if u < v {
                writeln!(w, "F {u} {v}")?;
            }
        }
        for &v in g.rejected_by(u) {
            writeln!(w, "R {u} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a v1 augmented-graph file.
///
/// # Errors
///
/// Returns a parse/header/range error as appropriate, or
/// [`AugmentedIoError::Io`] on read failures.
pub fn read_augmented<R: Read>(reader: R) -> Result<AugmentedGraph, AugmentedIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| AugmentedIoError::BadHeader { found: "<empty file>".to_string() })?;
    let n: usize = header
        .strip_prefix(HEADER_PREFIX)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| AugmentedIoError::BadHeader { found: header.clone() })?;

    let mut b = AugmentedGraphBuilder::new(n);
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let kind = parts.next();
        let u: Option<u32> = parts.next().and_then(|t| t.parse().ok());
        let v: Option<u32> = parts.next().and_then(|t| t.parse().ok());
        let (Some(kind), Some(u), Some(v)) = (kind, u, v) else {
            return Err(AugmentedIoError::Parse { line: lineno, content: trimmed.to_string() });
        };
        for id in [u, v] {
            if id as usize >= n {
                return Err(AugmentedIoError::NodeOutOfRange { line: lineno, node: id });
            }
        }
        match kind {
            "F" => b.add_friendship(NodeId(u), NodeId(v)),
            "R" => b.add_rejection(NodeId(u), NodeId(v)),
            _ => {
                return Err(AugmentedIoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AugmentedGraphBuilder;

    fn sample() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(2), NodeId(3));
        b.add_rejection(NodeId(1), NodeId(2));
        b.add_rejection(NodeId(3), NodeId(0));
        b.build()
    }

    #[test]
    fn roundtrips_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g, g2);
    }

    #[test]
    fn preserves_rejection_direction() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert!(g2.has_rejection(NodeId(1), NodeId(2)));
        assert!(!g2.has_rejection(NodeId(2), NodeId(1)));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_augmented("F 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::BadHeader { .. }));
    }

    #[test]
    fn rejects_unknown_edge_kind() {
        let data = format!("{HEADER_PREFIX}3\nX 0 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let data = format!("{HEADER_PREFIX}2\nF 0 5\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn tolerates_comments_and_blanks() {
        let data = format!("{HEADER_PREFIX}2\n\n# comment\nF 0 1\n");
        let g = read_augmented(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_friendships(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = AugmentedGraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g2.num_nodes(), 0);
    }
}
