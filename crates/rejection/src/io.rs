//! Persistence for rejection-augmented graphs.
//!
//! A plain-text line format, one edge per line:
//!
//! ```text
//! # rejecto augmented graph v1: nodes=<n>
//! F <u> <v>     # undirected friendship
//! R <u> <v>     # u rejected v's request
//! ```
//!
//! OSN operators export their (friendship, rejection) logs in this shape
//! and run the detector offline; the CLI's `detect` subcommand consumes it.

use crate::{AugmentedGraph, AugmentedGraphBuilder, NodeId};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

pub use socialgraph::io::LoadStats;

/// Errors from reading an augmented-graph file.
#[derive(Debug)]
#[non_exhaustive]
pub enum AugmentedIoError {
    /// The header line is missing or malformed.
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// An edge line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token (or `"<end of line>"` for a truncated line).
        token: String,
        /// The unparsable content.
        content: String,
    },
    /// An edge referenced a node outside the declared node count.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        node: u32,
    },
    /// A structurally valid edge line that a well-formed export never
    /// contains: a self-loop, an exact duplicate of an earlier edge, or
    /// (when [`IngestGuards::reject_conflicts`] is set) a friendship that
    /// contradicts an already-recorded rejection between the same pair.
    /// Strict loads fail here; lenient loads skip and count the line.
    HostileEdge {
        /// 1-based line number.
        line: usize,
        /// What made the edge hostile (`"self-loop"`, `"duplicate edge"`,
        /// `"conflicting friend+rejection pair"`).
        kind: &'static str,
        /// First endpoint as written.
        u: u32,
        /// Second endpoint as written.
        v: u32,
    },
    /// The input would grow a resource past an explicit budget (or past a
    /// structural ceiling such as the `u32` dense-id space), so the loader
    /// refused to keep allocating. Fatal even in lenient mode: an input
    /// over budget is over budget no matter how many lines are skipped.
    ResourceExhausted {
        /// Which resource ran out (`"nodes"`, `"friendships"`,
        /// `"rejections"`, `"node ids"`).
        resource: &'static str,
        /// The configured (or structural) limit.
        limit: u64,
        /// The observed demand that exceeded it.
        observed: u64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An error annotated with the path of the file it came from.
    InFile {
        /// Path of the file being read.
        file: String,
        /// The underlying error (carries the 1-based line and token for
        /// parse errors).
        source: Box<AugmentedIoError>,
    },
}

impl AugmentedIoError {
    /// Wraps the error with the path of the file it came from. Callers
    /// that open files themselves attach the path at the call site, since
    /// the readers only see an anonymous `Read`.
    #[must_use]
    pub fn in_file(self, file: impl Into<String>) -> AugmentedIoError {
        AugmentedIoError::InFile { file: file.into(), source: Box::new(self) }
    }
}

impl fmt::Display for AugmentedIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugmentedIoError::BadHeader { found } => {
                write!(f, "missing or malformed header line, found {found:?}")
            }
            AugmentedIoError::Parse { line, token, content } => {
                write!(f, "cannot parse edge line {line}: bad token {token:?} in {content:?}")
            }
            AugmentedIoError::NodeOutOfRange { line, node } => {
                write!(f, "node id {node} out of range on line {line}")
            }
            AugmentedIoError::HostileEdge { line, kind, u, v } => {
                write!(f, "hostile edge on line {line}: {kind} ({u}, {v})")
            }
            AugmentedIoError::ResourceExhausted { resource, limit, observed } => write!(
                f,
                "resource budget exhausted: {resource}: observed {observed} exceeds limit {limit}"
            ),
            AugmentedIoError::Io(e) => write!(f, "augmented-graph i/o error: {e}"),
            AugmentedIoError::InFile { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for AugmentedIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AugmentedIoError::Io(e) => Some(e),
            AugmentedIoError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AugmentedIoError {
    fn from(e: std::io::Error) -> Self {
        AugmentedIoError::Io(e)
    }
}

const HEADER_PREFIX: &str = "# rejecto augmented graph v1: nodes=";

/// Ingest-time guards for hostile or over-sized augmented-graph files.
///
/// The default is fully permissive (no budgets, conflicts tolerated), which
/// matches the historical loader behaviour. Budgets are enforced *before*
/// allocation — a header declaring a trillion nodes fails fast instead of
/// ballooning memory — and remain fatal even in lenient mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestGuards {
    /// Maximum declared node count (`None` = unlimited).
    pub max_nodes: Option<u64>,
    /// Maximum accepted friendship lines (`None` = unlimited).
    pub max_friendships: Option<u64>,
    /// Maximum accepted rejection lines (`None` = unlimited).
    pub max_rejections: Option<u64>,
    /// Reject a friendship and a rejection between the same user pair as a
    /// [`AugmentedIoError::HostileEdge`]. Off by default: the simulator
    /// legitimately produces careless users who accept one request from a
    /// spammer and reject the next.
    pub reject_conflicts: bool,
}

impl IngestGuards {
    /// Guards that never trip: no budgets, conflicts tolerated.
    #[must_use]
    pub fn unlimited() -> Self {
        IngestGuards::default()
    }

    /// Whether any budget or conflict check is active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.max_nodes.is_some()
            || self.max_friendships.is_some()
            || self.max_rejections.is_some()
            || self.reject_conflicts
    }
}

/// Writes `g` in the v1 text format.
///
/// # Errors
///
/// Returns [`AugmentedIoError::Io`] on write failures.
pub fn write_augmented<W: Write>(g: &AugmentedGraph, writer: W) -> Result<(), AugmentedIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{HEADER_PREFIX}{}", g.num_nodes())?;
    for u in g.nodes() {
        for &v in g.friends(u) {
            if u < v {
                writeln!(w, "F {u} {v}")?;
            }
        }
        for &v in g.rejected_by(u) {
            writeln!(w, "R {u} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a v1 augmented-graph file.
///
/// # Errors
///
/// Returns a parse/header/range error as appropriate, or
/// [`AugmentedIoError::Io`] on read failures.
pub fn read_augmented<R: Read>(reader: R) -> Result<AugmentedGraph, AugmentedIoError> {
    let (g, _) = read_augmented_impl(reader, false, IngestGuards::default())?;
    Ok(g)
}

/// Like [`read_augmented`], with explicit [`IngestGuards`]: node/edge
/// budgets enforced before allocation and optional friend+rejection
/// conflict rejection.
///
/// # Errors
///
/// Everything [`read_augmented`] returns, plus
/// [`AugmentedIoError::ResourceExhausted`] when a guard trips.
pub fn read_augmented_guarded<R: Read>(
    reader: R,
    guards: IngestGuards,
) -> Result<AugmentedGraph, AugmentedIoError> {
    let (g, _) = read_augmented_impl(reader, false, guards)?;
    Ok(g)
}

/// Like [`read_augmented_lenient`], with explicit [`IngestGuards`].
/// Hostile edges are skipped and counted; budget trips stay fatal.
///
/// # Errors
///
/// Everything [`read_augmented_lenient`] returns, plus
/// [`AugmentedIoError::ResourceExhausted`] when a guard trips.
pub fn read_augmented_lenient_guarded<R: Read>(
    reader: R,
    guards: IngestGuards,
) -> Result<(AugmentedGraph, LoadStats), AugmentedIoError> {
    read_augmented_impl(reader, true, guards)
}

/// Like [`read_augmented`], but malformed and out-of-range edge lines are
/// skipped and counted instead of failing the whole load. The header stays
/// strict — without a trustworthy node count nothing downstream is
/// meaningful — and I/O errors remain fatal. The returned [`LoadStats`]
/// lets the caller report how much input was dropped.
///
/// # Errors
///
/// Returns [`AugmentedIoError::BadHeader`] on a missing/malformed header
/// and [`AugmentedIoError::Io`] on read failures.
pub fn read_augmented_lenient<R: Read>(
    reader: R,
) -> Result<(AugmentedGraph, LoadStats), AugmentedIoError> {
    read_augmented_impl(reader, true, IngestGuards::default())
}

enum EdgeKind {
    Friend,
    Reject,
}

/// Parses one non-comment edge line against the declared node count `n`,
/// naming the offending token on failure.
fn parse_augmented_line(
    trimmed: &str,
    lineno: usize,
    n: usize,
) -> Result<(EdgeKind, u32, u32), AugmentedIoError> {
    let bad = |token: &str| AugmentedIoError::Parse {
        line: lineno,
        token: token.to_string(),
        content: trimmed.to_string(),
    };
    let mut parts = trimmed.split_whitespace();
    let kind = match parts.next() {
        Some("F") => EdgeKind::Friend,
        Some("R") => EdgeKind::Reject,
        Some(other) => return Err(bad(other)),
        None => return Err(bad("<end of line>")),
    };
    let id = |tok: Option<&str>| -> Result<u32, AugmentedIoError> {
        match tok {
            Some(t) => t.parse().map_err(|_| bad(t)),
            None => Err(bad("<end of line>")),
        }
    };
    let u = id(parts.next())?;
    let v = id(parts.next())?;
    for x in [u, v] {
        if usize::try_from(x).map_or(true, |xi| xi >= n) {
            return Err(AugmentedIoError::NodeOutOfRange { line: lineno, node: x });
        }
    }
    Ok((kind, u, v))
}

/// Classifies a parsed edge against what the builder has already recorded.
/// Returns the hostile-edge `kind` or `None` for a clean, novel edge.
fn hostile_kind(
    b: &AugmentedGraphBuilder,
    kind: &EdgeKind,
    u: NodeId,
    v: NodeId,
    guards: IngestGuards,
) -> Option<&'static str> {
    if u == v {
        return Some("self-loop");
    }
    match kind {
        EdgeKind::Friend => {
            if b.contains_friendship(u, v) {
                Some("duplicate edge")
            } else if guards.reject_conflicts
                && (b.contains_rejection(u, v) || b.contains_rejection(v, u))
            {
                Some("conflicting friend+rejection pair")
            } else {
                None
            }
        }
        EdgeKind::Reject => {
            if b.contains_rejection(u, v) {
                Some("duplicate edge")
            } else if guards.reject_conflicts && b.contains_friendship(u, v) {
                Some("conflicting friend+rejection pair")
            } else {
                None
            }
        }
    }
}

fn read_augmented_impl<R: Read>(
    reader: R,
    lenient: bool,
    guards: IngestGuards,
) -> Result<(AugmentedGraph, LoadStats), AugmentedIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| AugmentedIoError::BadHeader { found: "<empty file>".to_string() })?;
    let n: usize = header
        .strip_prefix(HEADER_PREFIX)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| AugmentedIoError::BadHeader { found: header.clone() })?;

    // Gate the declared node count BEFORE the builder allocates three
    // `Vec`s of `n` lists: a hostile header is the cheapest way to demand
    // unbounded memory. The dense `u32` id space is a structural ceiling
    // even with no configured budget.
    let declared = u64::try_from(n).expect("declared node count fits in u64");
    if declared > u64::from(u32::MAX) {
        return Err(AugmentedIoError::ResourceExhausted {
            resource: "node ids",
            limit: u64::from(u32::MAX),
            observed: declared,
        });
    }
    if let Some(max) = guards.max_nodes {
        if declared > max {
            return Err(AugmentedIoError::ResourceExhausted {
                resource: "nodes",
                limit: max,
                observed: declared,
            });
        }
    }

    let mut b = AugmentedGraphBuilder::new(n);
    let mut stats = LoadStats::default();
    let mut friendships = 0u64;
    let mut rejections = 0u64;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // parse_augmented_line only yields Parse / NodeOutOfRange, both of
        // which lenient mode downgrades to a skip; Io stays fatal above,
        // and budget trips below stay fatal in both modes.
        match parse_augmented_line(trimmed, lineno, n) {
            Ok((kind, ur, vr)) => {
                let (u, v) = (NodeId(ur), NodeId(vr));
                if let Some(hostile) = hostile_kind(&b, &kind, u, v, guards) {
                    if lenient {
                        stats.record(lineno);
                        continue;
                    }
                    return Err(AugmentedIoError::HostileEdge {
                        line: lineno,
                        kind: hostile,
                        u: ur,
                        v: vr,
                    });
                }
                match kind {
                    EdgeKind::Friend => {
                        if let Some(max) = guards.max_friendships {
                            if friendships >= max {
                                return Err(AugmentedIoError::ResourceExhausted {
                                    resource: "friendships",
                                    limit: max,
                                    observed: friendships
                                        .checked_add(1)
                                        .expect("friendship count fits in u64"),
                                });
                            }
                        }
                        friendships =
                            friendships.checked_add(1).expect("friendship count fits in u64");
                        b.add_friendship(u, v);
                    }
                    EdgeKind::Reject => {
                        if let Some(max) = guards.max_rejections {
                            if rejections >= max {
                                return Err(AugmentedIoError::ResourceExhausted {
                                    resource: "rejections",
                                    limit: max,
                                    observed: rejections
                                        .checked_add(1)
                                        .expect("rejection count fits in u64"),
                                });
                            }
                        }
                        rejections =
                            rejections.checked_add(1).expect("rejection count fits in u64");
                        b.add_rejection(u, v);
                    }
                }
            }
            Err(e) => {
                if lenient {
                    stats.record(lineno);
                    continue;
                }
                return Err(e);
            }
        }
    }
    Ok((b.build(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AugmentedGraphBuilder;

    fn sample() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(2), NodeId(3));
        b.add_rejection(NodeId(1), NodeId(2));
        b.add_rejection(NodeId(3), NodeId(0));
        b.build()
    }

    #[test]
    fn roundtrips_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g, g2);
    }

    #[test]
    fn preserves_rejection_direction() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert!(g2.has_rejection(NodeId(1), NodeId(2)));
        assert!(!g2.has_rejection(NodeId(2), NodeId(1)));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_augmented("F 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::BadHeader { .. }));
    }

    #[test]
    fn rejects_unknown_edge_kind() {
        let data = format!("{HEADER_PREFIX}3\nX 0 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "X");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn parse_error_names_the_bad_endpoint_token() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nR 1 banana\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { line, token, content } => {
                assert_eq!(line, 3);
                assert_eq!(token, "banana");
                assert_eq!(content, "R 1 banana");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_line_reports_end_of_line() {
        let data = format!("{HEADER_PREFIX}3\nF 0\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        match err {
            AugmentedIoError::Parse { token, .. } => assert_eq!(token, "<end of line>"),
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn in_file_prepends_the_path_and_chains_the_source() {
        use std::error::Error;
        let data = format!("{HEADER_PREFIX}3\nX 0 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err().in_file("attack.rjg");
        let msg = err.to_string();
        assert!(msg.starts_with("attack.rjg: "), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(err.source().is_some());
    }

    #[test]
    fn lenient_mode_skips_and_counts_bad_lines() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nX 0 1\nR 1 2\nF 0 99\nR 9 bad\n");
        let (g, stats) = read_augmented_lenient(data.as_bytes()).expect("lenient load");
        assert_eq!(g.num_friendships(), 1);
        assert_eq!(g.num_rejections(), 1);
        assert_eq!(stats.skipped_lines, 3);
        assert_eq!(stats.first_skipped, Some(3));
    }

    #[test]
    fn lenient_mode_still_rejects_a_bad_header() {
        let err = read_augmented_lenient("F 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::BadHeader { .. }));
    }

    #[test]
    fn lenient_mode_matches_strict_on_clean_input() {
        let g = sample();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let strict = read_augmented(buf.as_slice()).expect("strict load");
        let (lenient, stats) = read_augmented_lenient(buf.as_slice()).expect("lenient load");
        assert_eq!(strict, lenient);
        assert!(!stats.is_degraded());
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let data = format!("{HEADER_PREFIX}2\nF 0 5\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(matches!(err, AugmentedIoError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn tolerates_comments_and_blanks() {
        let data = format!("{HEADER_PREFIX}2\n\n# comment\nF 0 1\n");
        let g = read_augmented(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_friendships(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = AugmentedGraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_augmented(&g, &mut buf).expect("write to Vec cannot fail");
        let g2 = read_augmented(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g2.num_nodes(), 0);
    }

    #[test]
    fn strict_rejects_self_loops_with_a_typed_error() {
        let data = format!("{HEADER_PREFIX}3\nF 1 1\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(
            matches!(err, AugmentedIoError::HostileEdge { line: 2, kind: "self-loop", u: 1, v: 1 }),
            "{err}"
        );
    }

    #[test]
    fn strict_rejects_duplicate_friendships_either_order() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nF 1 0\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(
            matches!(err, AugmentedIoError::HostileEdge { line: 3, kind: "duplicate edge", .. }),
            "{err}"
        );
    }

    #[test]
    fn strict_rejects_duplicate_rejections_but_not_the_reverse_direction() {
        let ok = format!("{HEADER_PREFIX}3\nR 0 1\nR 1 0\n");
        read_augmented(ok.as_bytes()).expect("opposite directions are distinct edges");
        let dup = format!("{HEADER_PREFIX}3\nR 0 1\nR 0 1\n");
        let err = read_augmented(dup.as_bytes()).unwrap_err();
        assert!(
            matches!(err, AugmentedIoError::HostileEdge { kind: "duplicate edge", .. }),
            "{err}"
        );
    }

    #[test]
    fn conflicts_are_tolerated_by_default_and_rejected_on_request() {
        // A careless user accepts one request from a spammer and rejects
        // the next — legitimate in simulator output.
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nR 0 1\n");
        let g = read_augmented(data.as_bytes()).expect("conflicts allowed by default");
        assert_eq!(g.num_friendships(), 1);
        assert_eq!(g.num_rejections(), 1);

        let guards = IngestGuards { reject_conflicts: true, ..IngestGuards::default() };
        let err = read_augmented_guarded(data.as_bytes(), guards).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::HostileEdge {
                    kind: "conflicting friend+rejection pair",
                    ..
                }
            ),
            "{err}"
        );
        // Reversed order (rejection first, then friendship) trips too.
        let rev = format!("{HEADER_PREFIX}3\nR 1 0\nF 0 1\n");
        let err = read_augmented_guarded(rev.as_bytes(), guards).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::HostileEdge {
                    kind: "conflicting friend+rejection pair",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn lenient_mode_skips_and_counts_hostile_edges() {
        let data = format!("{HEADER_PREFIX}3\nF 0 1\nF 0 1\nF 2 2\nR 1 2\nR 1 2\n");
        let (g, stats) = read_augmented_lenient(data.as_bytes()).expect("lenient load");
        assert_eq!(g.num_friendships(), 1);
        assert_eq!(g.num_rejections(), 1);
        assert_eq!(stats.skipped_lines, 3);
        assert_eq!(stats.first_skipped, Some(3));
    }

    #[test]
    fn oversized_header_fails_before_allocating() {
        let data = format!("{HEADER_PREFIX}4294967296\n");
        let err = read_augmented(data.as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::ResourceExhausted { resource: "node ids", .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn node_budget_gates_the_declared_count() {
        let guards = IngestGuards { max_nodes: Some(10), ..IngestGuards::default() };
        let data = format!("{HEADER_PREFIX}11\n");
        let err = read_augmented_guarded(data.as_bytes(), guards).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::ResourceExhausted { resource: "nodes", limit: 10, observed: 11 }
            ),
            "{err}"
        );
        let ok = format!("{HEADER_PREFIX}10\n");
        read_augmented_guarded(ok.as_bytes(), guards).expect("at the budget is fine");
    }

    #[test]
    fn edge_budgets_trip_even_in_lenient_mode() {
        let guards = IngestGuards {
            max_friendships: Some(1),
            max_rejections: Some(1),
            ..IngestGuards::default()
        };
        let data = format!("{HEADER_PREFIX}4\nF 0 1\nF 2 3\n");
        let err = read_augmented_lenient_guarded(data.as_bytes(), guards).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::ResourceExhausted {
                    resource: "friendships",
                    limit: 1,
                    observed: 2
                }
            ),
            "{err}"
        );
        let data = format!("{HEADER_PREFIX}4\nR 0 1\nR 2 3\n");
        let err = read_augmented_guarded(data.as_bytes(), guards).unwrap_err();
        assert!(
            matches!(
                err,
                AugmentedIoError::ResourceExhausted {
                    resource: "rejections",
                    limit: 1,
                    observed: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn default_guards_are_inactive() {
        assert!(!IngestGuards::default().is_active());
        assert!(!IngestGuards::unlimited().is_active());
        assert!(IngestGuards { max_nodes: Some(1), ..IngestGuards::default() }.is_active());
        assert!(IngestGuards { reject_conflicts: true, ..IngestGuards::default() }.is_active());
    }
}
