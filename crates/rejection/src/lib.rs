//! Rejection-augmented social graphs (the paper's §III model).
//!
//! Rejecto models an OSN as `G = (V, F, R⃗)`: an undirected friendship set
//! `F` plus *directed* social rejections `R⃗`, where the edge `⟨u, v⟩` means
//! user `u` rejected (or reported) a friend request from user `v`.
//!
//! This crate provides:
//!
//! * [`AugmentedGraph`] / [`AugmentedGraphBuilder`] — storage for `(V, F, R⃗)`
//!   with both rejection directions indexed;
//! * [`Partition`] — a two-region node assignment
//!   ([`Region::Legit`] / [`Region::Suspect`]) with **incremental cross-cut
//!   counters** so switching one node is `O(deg)`:
//!   `|F(Ū,U)|` (cross friendships) and `|R⟨Ū,U⟩|` (rejections cast by the
//!   legit region on the suspect region);
//! * the aggregate acceptance rate `AC⟨U,Ū⟩ = |F| / (|F| + |R⃗|)` of a cut.
//!
//! ```
//! use rejection::{AugmentedGraphBuilder, Partition, Region, NodeId};
//!
//! let mut b = AugmentedGraphBuilder::new(3);
//! b.add_friendship(NodeId(0), NodeId(1));
//! b.add_rejection(NodeId(0), NodeId(2)); // 0 rejected 2's request
//! let g = b.build();
//!
//! // Put node 2 in the suspect region:
//! let p = Partition::from_fn(&g, |n| if n == NodeId(2) { Region::Suspect } else { Region::Legit });
//! assert_eq!(p.cross_friendships(), 0);
//! assert_eq!(p.cross_rejections(), 1);
//! assert_eq!(p.acceptance_rate(), Some(0.0));
//! ```

#![forbid(unsafe_code)]

mod augmented;
pub mod io;
mod partition;

pub use augmented::{AugmentedGraph, AugmentedGraphBuilder};
pub use partition::{Partition, Region};
pub use socialgraph::NodeId;
