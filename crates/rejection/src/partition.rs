use crate::{AugmentedGraph, NodeId};

/// Which side of the cut a node is on.
///
/// `Suspect` is the region `U` whose *incoming* requests define the
/// aggregate acceptance rate `AC⟨U, Ū⟩`; `Legit` is its complement `Ū`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The non-suspect region `Ū`.
    Legit,
    /// The suspect region `U` (the side receiving the counted rejections).
    Suspect,
}

impl Region {
    /// The other region.
    #[inline]
    pub fn other(self) -> Region {
        match self {
            Region::Legit => Region::Suspect,
            Region::Suspect => Region::Legit,
        }
    }
}

/// A two-region partition of an [`AugmentedGraph`] with incremental cut
/// counters.
///
/// Maintains, under `O(deg)` single-node switches:
///
/// * `cross_friendships = |F(Ū, U)|` — friendships straddling the cut
///   (these are the paper's *attack edges* when `U` is the fake region);
/// * `cross_rejections = |R⟨Ū, U⟩|` — rejections cast by `Legit` nodes on
///   `Suspect` nodes. Rejections in the other direction, and rejections
///   internal to either region, deliberately do **not** count: that is what
///   makes the aggregate rate collusion-resistant (§IV-A).
///
/// The aggregate acceptance rate of the cut is
/// `cross_friendships / (cross_friendships + cross_rejections)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    region: Vec<Region>,
    suspect_count: usize,
    cross_friendships: u64,
    cross_rejections: u64,
}

impl Partition {
    /// Builds a partition by evaluating `f` on every node of `g`.
    pub fn from_fn<F>(g: &AugmentedGraph, mut f: F) -> Self
    where
        F: FnMut(NodeId) -> Region,
    {
        let region: Vec<Region> = g.nodes().map(&mut f).collect();
        Self::from_regions(g, region)
    }

    /// Builds a partition from an explicit region vector.
    ///
    /// # Panics
    ///
    /// Panics if `region.len() != g.num_nodes()`.
    pub fn from_regions(g: &AugmentedGraph, region: Vec<Region>) -> Self {
        assert_eq!(region.len(), g.num_nodes(), "region vector has wrong length");
        let suspect_count = region.iter().filter(|&&r| r == Region::Suspect).count();
        let mut cross_friendships = 0u64;
        let mut cross_rejections = 0u64;
        for u in g.nodes() {
            for &v in g.friends(u) {
                if u < v && region[u.index()] != region[v.index()] {
                    cross_friendships = cross_friendships
                        .checked_add(1)
                        .expect("cross friendship counter fits in u64");
                }
            }
            if region[u.index()] == Region::Legit {
                for &v in g.rejected_by(u) {
                    if region[v.index()] == Region::Suspect {
                        cross_rejections = cross_rejections
                            .checked_add(1)
                            .expect("cross rejection counter fits in u64");
                    }
                }
            }
        }
        Partition { region, suspect_count, cross_friendships, cross_rejections }
    }

    /// A partition with every node in `Legit` (the all-`Ū` starting point).
    pub fn all_legit(g: &AugmentedGraph) -> Self {
        Partition {
            region: vec![Region::Legit; g.num_nodes()],
            suspect_count: 0,
            cross_friendships: 0,
            cross_rejections: 0,
        }
    }

    /// Region of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn region(&self, u: NodeId) -> Region {
        self.region[u.index()]
    }

    /// Number of nodes in the suspect region.
    #[inline]
    pub fn suspect_count(&self) -> usize {
        self.suspect_count
    }

    /// Number of nodes in the partition overall.
    #[inline]
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Whether the partition covers zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// `|F(Ū, U)|`: friendships crossing the cut.
    #[inline]
    pub fn cross_friendships(&self) -> u64 {
        self.cross_friendships
    }

    /// `|R⟨Ū, U⟩|`: rejections cast by the legit region on the suspect
    /// region.
    #[inline]
    pub fn cross_rejections(&self) -> u64 {
        self.cross_rejections
    }

    /// Aggregate acceptance rate `AC⟨U, Ū⟩` of the requests from the suspect
    /// region to the legit region; `None` when the cut carries neither
    /// friendships nor rejections (the rate is undefined, e.g. `U = ∅`).
    pub fn acceptance_rate(&self) -> Option<f64> {
        let f = self.cross_friendships as f64; // xtask-allow: lossy-cast: edge counts are < 2^53 and convert exactly
        let r = self.cross_rejections as f64; // xtask-allow: lossy-cast: edge counts are < 2^53 and convert exactly
        if f + r == 0.0 {
            None
        } else {
            Some(f / (f + r))
        }
    }

    /// The nodes currently in the suspect region, ascending.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.region
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == Region::Suspect)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Moves `u` to the other region, updating the cut counters in
    /// `O(deg(u))`. Returns the region `u` now occupies.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn switch(&mut self, g: &AugmentedGraph, u: NodeId) -> Region {
        let from = self.region[u.index()];
        let to = from.other();
        let (df, dr) = self.switch_delta(g, u);
        self.cross_friendships = self
            .cross_friendships
            .checked_add_signed(df)
            .expect("cross friendship counter underflow");
        self.cross_rejections = self
            .cross_rejections
            .checked_add_signed(dr)
            .expect("cross rejection counter underflow");
        self.region[u.index()] = to;
        match to {
            Region::Suspect => {
                self.suspect_count =
                    self.suspect_count.checked_add(1).expect("suspect count fits in usize");
            }
            Region::Legit => {
                self.suspect_count =
                    self.suspect_count.checked_sub(1).expect("suspect count underflow");
            }
        }
        to
    }

    /// The `(Δcross_friendships, Δcross_rejections)` that switching `u`
    /// *would* cause, without applying it. This is the primitive the
    /// extended-KL gain computation builds on.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn switch_delta(&self, g: &AugmentedGraph, u: NodeId) -> (i64, i64) {
        let from = self.region[u.index()];
        // Friendships: edges to same-region neighbors become cross (+1),
        // edges to other-region neighbors become internal (−1).
        let mut df = 0i64;
        for &v in g.friends(u) {
            if self.region[v.index()] == from {
                df += 1;
            } else {
                df -= 1;
            }
        }
        // Rejections ⟨r, s⟩ count iff r is Legit and s is Suspect.
        let mut dr = 0i64;
        match from {
            Region::Legit => {
                // u: Legit → Suspect.
                // + rejections u received from Legit users (now Legit→Suspect)
                // − rejections u cast on Suspect users (no longer Legit→Suspect)
                for &r in g.rejectors_of(u) {
                    if self.region[r.index()] == Region::Legit && r != u {
                        dr += 1;
                    }
                }
                for &s in g.rejected_by(u) {
                    if self.region[s.index()] == Region::Suspect {
                        dr -= 1;
                    }
                }
            }
            Region::Suspect => {
                // u: Suspect → Legit (mirror of the above).
                for &r in g.rejectors_of(u) {
                    if self.region[r.index()] == Region::Legit {
                        dr -= 1;
                    }
                }
                for &s in g.rejected_by(u) {
                    if self.region[s.index()] == Region::Suspect && s != u {
                        dr += 1;
                    }
                }
            }
        }
        (df, dr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AugmentedGraphBuilder;

    /// 4 legit (0–3) in a path, 2 fakes (4, 5) befriending each other;
    /// fake 4 has one accepted request to node 0 and rejections from 1, 2.
    fn scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(6);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(1), NodeId(2));
        b.add_friendship(NodeId(2), NodeId(3));
        b.add_friendship(NodeId(4), NodeId(5));
        b.add_friendship(NodeId(0), NodeId(4)); // attack edge
        b.add_rejection(NodeId(1), NodeId(4));
        b.add_rejection(NodeId(2), NodeId(4));
        b.build()
    }

    fn fake_region(n: NodeId) -> Region {
        if n.0 >= 4 {
            Region::Suspect
        } else {
            Region::Legit
        }
    }

    #[test]
    fn counters_match_direct_count() {
        let g = scenario();
        let p = Partition::from_fn(&g, fake_region);
        assert_eq!(p.cross_friendships(), 1); // the attack edge
        assert_eq!(p.cross_rejections(), 2); // 1→4, 2→4
        assert_eq!(p.suspect_count(), 2);
        assert!((p.acceptance_rate().expect("cut has requests") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn internal_rejections_do_not_count() {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_rejection(NodeId(2), NodeId(3)); // suspect → suspect
        b.add_rejection(NodeId(0), NodeId(1)); // legit → legit
        b.add_rejection(NodeId(2), NodeId(0)); // suspect → legit
        let g = b.build();
        let p = Partition::from_fn(&g, |n| if n.0 >= 2 { Region::Suspect } else { Region::Legit });
        assert_eq!(p.cross_rejections(), 0);
    }

    #[test]
    fn all_legit_has_empty_cut() {
        let g = scenario();
        let p = Partition::all_legit(&g);
        assert_eq!(p.cross_friendships(), 0);
        assert_eq!(p.cross_rejections(), 0);
        assert_eq!(p.acceptance_rate(), None);
        assert_eq!(p.suspect_count(), 0);
    }

    #[test]
    fn switch_updates_counters_incrementally() {
        let g = scenario();
        let mut p = Partition::all_legit(&g);
        // Move fake 4 into the suspect region.
        p.switch(&g, NodeId(4));
        // Cross friendships: 4's edges to 5 and 0 are both cross now.
        assert_eq!(p.cross_friendships(), 2);
        // Rejections 1→4 and 2→4 are now Legit→Suspect.
        assert_eq!(p.cross_rejections(), 2);
        // Move fake 5 too: edge 4-5 becomes internal.
        p.switch(&g, NodeId(5));
        assert_eq!(p.cross_friendships(), 1);
        assert_eq!(p.cross_rejections(), 2);
    }

    #[test]
    fn switch_agrees_with_recount_on_every_move() {
        let g = scenario();
        let mut p = Partition::all_legit(&g);
        for u in [4u32, 1, 5, 4, 0, 2, 1].map(NodeId) {
            p.switch(&g, u);
            let recount = Partition::from_regions(&g, (0..6).map(|i| p.region(NodeId(i))).collect());
            assert_eq!(p.cross_friendships(), recount.cross_friendships(), "after moving {u}");
            assert_eq!(p.cross_rejections(), recount.cross_rejections(), "after moving {u}");
            assert_eq!(p.suspect_count(), recount.suspect_count());
        }
    }

    #[test]
    fn switch_delta_previews_switch() {
        let g = scenario();
        let mut p = Partition::from_fn(&g, fake_region);
        let (df, dr) = p.switch_delta(&g, NodeId(4));
        let (f0, r0) = (p.cross_friendships() as i64, p.cross_rejections() as i64);
        p.switch(&g, NodeId(4));
        assert_eq!(p.cross_friendships() as i64, f0 + df);
        assert_eq!(p.cross_rejections() as i64, r0 + dr);
    }

    #[test]
    fn switch_is_an_involution_on_counters() {
        let g = scenario();
        let mut p = Partition::from_fn(&g, fake_region);
        let before = p.clone();
        p.switch(&g, NodeId(2));
        p.switch(&g, NodeId(2));
        assert_eq!(p, before);
    }

    #[test]
    fn suspects_lists_suspect_side() {
        let g = scenario();
        let p = Partition::from_fn(&g, fake_region);
        assert_eq!(p.suspects(), vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn acceptance_rate_of_pure_rejection_cut_is_zero() {
        let mut b = AugmentedGraphBuilder::new(2);
        b.add_rejection(NodeId(0), NodeId(1));
        let g = b.build();
        let p = Partition::from_fn(&g, |n| if n.0 == 1 { Region::Suspect } else { Region::Legit });
        assert_eq!(p.acceptance_rate(), Some(0.0));
    }
}
