//! Hostile-input hardening of the augmented-graph loaders: arbitrary byte
//! streams, adversarially shaped edge mixes (self-loops, duplicates,
//! friend+rejection conflicts), and boundary-sized node declarations must
//! produce typed errors or counted skips — never a panic, and never an
//! allocation past an armed [`IngestGuards`] budget.

use proptest::prelude::*;
use rejection::io::{
    read_augmented, read_augmented_guarded, read_augmented_lenient,
    read_augmented_lenient_guarded, AugmentedIoError, IngestGuards,
};

const HEADER: &str = "# rejecto augmented graph v1: nodes=";

/// Reference classifier mirroring the loader's hostile-edge taxonomy: an
/// independent reimplementation the real one must agree with on both the
/// strict verdict and the lenient skip count.
fn hostile_count(n: u32, lines: &[(bool, u32, u32)], reject_conflicts: bool) -> usize {
    let mut friends: Vec<(u32, u32)> = Vec::new();
    let mut rejects: Vec<(u32, u32)> = Vec::new();
    let mut hostile = 0;
    for &(is_friend, u, v) in lines {
        if u >= n || v >= n {
            continue; // out-of-range, not part of this model
        }
        let fkey = (u.min(v), u.max(v));
        if u == v {
            hostile += 1;
        } else if is_friend {
            if friends.contains(&fkey)
                || (reject_conflicts && (rejects.contains(&(u, v)) || rejects.contains(&(v, u))))
            {
                hostile += 1;
            } else {
                friends.push(fkey);
            }
        } else if rejects.contains(&(u, v)) || (reject_conflicts && friends.contains(&fkey)) {
            hostile += 1;
        } else {
            rejects.push((u, v));
        }
    }
    hostile
}

fn render(n: u32, lines: &[(bool, u32, u32)]) -> String {
    let mut text = format!("{HEADER}{n}\n");
    for &(is_friend, u, v) in lines {
        let tag = if is_friend { 'F' } else { 'R' };
        text.push_str(&format!("{tag} {u} {v}\n"));
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every byte soup maps to `Ok` or a typed error in both modes — a
    /// panic anywhere in header parsing, edge parsing, or builder
    /// bookkeeping fails the test.
    #[test]
    fn arbitrary_bytes_never_panic_either_loader(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = read_augmented(bytes.as_slice());
        let _ = read_augmented_lenient(bytes.as_slice());
    }

    /// Arbitrary bytes *after a valid header* exercise the per-line paths:
    /// strict returns `Ok` or a typed error; lenient only ever fails on
    /// I/O (invalid UTF-8 from the line reader), and otherwise counts
    /// every dropped line.
    #[test]
    fn arbitrary_lines_after_a_valid_header_degrade_cleanly(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        n in 1u32..50,
    ) {
        let mut input = format!("{HEADER}{n}\n").into_bytes();
        input.extend_from_slice(&bytes);
        let _ = read_augmented(input.as_slice());
        match read_augmented_lenient(input.as_slice()) {
            Ok((g, _stats)) => prop_assert_eq!(g.num_nodes(), n as usize),
            Err(AugmentedIoError::Io(_)) => {}
            Err(other) => {
                return Err(format!("lenient loader returned a non-I/O error: {other}"));
            }
        }
    }

    /// The loader's hostile-edge taxonomy agrees with an independent
    /// reference model: the strict loader accepts exactly the inputs with
    /// zero hostile edges, and the lenient loader's skip count matches the
    /// model — with conflicts counted only when `reject_conflicts` is on.
    #[test]
    fn hostile_edge_taxonomy_matches_the_reference_model(
        n in 2u32..8,
        lines in proptest::collection::vec((any::<bool>(), 0u32..8, 0u32..8), 0..30),
        reject_conflicts in any::<bool>(),
    ) {
        // Keep endpoints in range: out-of-range handling is separately
        // typed (strict) / counted (lenient) and would double-count here.
        let lines: Vec<(bool, u32, u32)> =
            lines.into_iter().map(|(f, u, v)| (f, u % n, v % n)).collect();
        let text = render(n, &lines);
        let guards = IngestGuards { reject_conflicts, ..IngestGuards::default() };
        let expected = hostile_count(n, &lines, reject_conflicts);

        match read_augmented_guarded(text.as_bytes(), guards) {
            Ok(_) => prop_assert_eq!(expected, 0, "strict accepted a hostile input"),
            Err(AugmentedIoError::HostileEdge { .. }) => {
                prop_assert!(expected > 0, "strict rejected a clean input");
            }
            Err(other) => {
                return Err(format!("unexpected strict error: {other}"));
            }
        }

        let (_, stats) = read_augmented_lenient_guarded(text.as_bytes(), guards)
            .map_err(|e| format!("lenient load failed: {e}"))?;
        prop_assert_eq!(stats.skipped_lines, expected);
    }

    /// Boundary-sized node declarations: anything past the `u32` id space
    /// is structurally rejected, and an armed node budget rejects a
    /// boundary-sized declaration *before* the per-node allocation — this
    /// test would exhaust memory if the gate ran after it.
    #[test]
    fn u32_boundary_node_declarations_are_gated_before_allocation(
        extra in 0u64..4,
    ) {
        let past = u64::from(u32::MAX) + 1 + extra;
        let input = format!("{HEADER}{past}\n");
        match read_augmented(input.as_bytes()) {
            Err(AugmentedIoError::ResourceExhausted { resource, .. }) => {
                prop_assert_eq!(resource, "node ids");
            }
            other => {
                return Err(format!("oversized header must be rejected, got {other:?}"));
            }
        }

        let at_boundary = format!("{HEADER}{}\n", u32::MAX);
        let guards = IngestGuards { max_nodes: Some(1000), ..IngestGuards::default() };
        match read_augmented_guarded(at_boundary.as_bytes(), guards) {
            Err(AugmentedIoError::ResourceExhausted { resource, limit, observed }) => {
                prop_assert_eq!(resource, "nodes");
                prop_assert_eq!(limit, 1000);
                prop_assert_eq!(observed, u64::from(u32::MAX));
            }
            other => {
                return Err(format!("budget must trip pre-allocation, got {other:?}"));
            }
        }
    }
}
