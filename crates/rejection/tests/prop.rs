//! Property-based tests for the augmented graph and partition invariants.

use proptest::prelude::*;
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId, Partition, Region};

/// Strategy: a random augmented graph with up to `n` nodes plus edge lists.
fn augmented_graph(n: usize) -> impl Strategy<Value = AugmentedGraph> {
    let nodes = 2..n;
    nodes.prop_flat_map(|n| {
        let friend = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        let reject = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (Just(n), friend, reject).prop_map(|(n, friend, reject)| {
            let mut b = AugmentedGraphBuilder::new(n);
            for (u, v) in friend {
                b.add_friendship(NodeId(u), NodeId(v));
            }
            for (u, v) in reject {
                b.add_rejection(NodeId(u), NodeId(v));
            }
            b.build()
        })
    })
}

proptest! {
    /// Incremental cut counters match a from-scratch recount after any
    /// sequence of single-node switches.
    #[test]
    fn switch_counters_match_recount(
        g in augmented_graph(24),
        moves in proptest::collection::vec(0u32..24, 1..64),
    ) {
        let mut p = Partition::all_legit(&g);
        for m in moves {
            let u = NodeId(m % g.num_nodes() as u32);
            p.switch(&g, u);
            let regions: Vec<Region> = g.nodes().map(|x| p.region(x)).collect();
            let fresh = Partition::from_regions(&g, regions);
            prop_assert_eq!(p.cross_friendships(), fresh.cross_friendships());
            prop_assert_eq!(p.cross_rejections(), fresh.cross_rejections());
            prop_assert_eq!(p.suspect_count(), fresh.suspect_count());
        }
    }

    /// switch_delta previews exactly what switch applies.
    #[test]
    fn delta_is_exact_preview(
        g in augmented_graph(20),
        node in 0u32..20,
        presuspect in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let n = g.num_nodes();
        let u = NodeId(node % n as u32);
        let regions: Vec<Region> = (0..n)
            .map(|i| if presuspect[i % presuspect.len()] { Region::Suspect } else { Region::Legit })
            .collect();
        let mut p = Partition::from_regions(&g, regions);
        let (df, dr) = p.switch_delta(&g, u);
        let (f0, r0) = (p.cross_friendships() as i64, p.cross_rejections() as i64);
        p.switch(&g, u);
        prop_assert_eq!(p.cross_friendships() as i64, f0 + df);
        prop_assert_eq!(p.cross_rejections() as i64, r0 + dr);
    }

    /// Double switch is the identity.
    #[test]
    fn double_switch_is_identity(g in augmented_graph(16), node in 0u32..16) {
        let u = NodeId(node % g.num_nodes() as u32);
        let mut p = Partition::all_legit(&g);
        let before = p.clone();
        p.switch(&g, u);
        p.switch(&g, u);
        prop_assert_eq!(p, before);
    }

    /// Acceptance rate, when defined, is a probability; cross counters are
    /// bounded by the graph totals.
    #[test]
    fn cut_counters_are_bounded(
        g in augmented_graph(20),
        presuspect in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let n = g.num_nodes();
        let regions: Vec<Region> = (0..n)
            .map(|i| if presuspect[i % presuspect.len()] { Region::Suspect } else { Region::Legit })
            .collect();
        let p = Partition::from_regions(&g, regions);
        prop_assert!(p.cross_friendships() <= g.num_friendships());
        prop_assert!(p.cross_rejections() <= g.num_rejections());
        if let Some(ac) = p.acceptance_rate() {
            prop_assert!((0.0..=1.0).contains(&ac));
        }
    }

    /// Induced subgraphs never contain edges touching dropped nodes, and
    /// edge counts never grow.
    #[test]
    fn induced_subgraph_is_consistent(
        g in augmented_graph(20),
        keep_bits in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let n = g.num_nodes();
        let keep: Vec<bool> = (0..n).map(|i| keep_bits[i % keep_bits.len()]).collect();
        let (sub, original) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.num_nodes(), keep.iter().filter(|&&k| k).count());
        prop_assert!(sub.num_friendships() <= g.num_friendships());
        prop_assert!(sub.num_rejections() <= g.num_rejections());
        // Every surviving friendship exists in the original graph.
        for u in sub.nodes() {
            for &v in sub.friends(u) {
                prop_assert!(g.are_friends(original[u.index()], original[v.index()]));
            }
            for &v in sub.rejected_by(u) {
                prop_assert!(g.has_rejection(original[u.index()], original[v.index()]));
            }
        }
    }
}
