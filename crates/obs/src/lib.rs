//! Deterministic observability for the Rejecto reproduction.
//!
//! The paper's own scalability evidence is an *instrumented* prototype
//! (Table II reports per-stage timings of the distributed MAAR sweep), and
//! the ROADMAP's production posture needs the same visibility here: where a
//! detection spends its passes, how often the recovery ladder fires, how
//! big the checkpoints are. This crate is that layer — with one hard
//! constraint the usual metrics crates do not give us:
//!
//! **Everything outside the `timings` section is deterministic by
//! construction.** The repo's contract (`cargo xtask check --determinism`)
//! is that thread count, worker count, and recovered faults are invisible
//! in every artifact. Metrics join that contract: counters, histograms,
//! and span *counts* record algorithmic quantities (passes run, moves
//! committed, bytes checkpointed) whose integer totals are identical at
//! `threads=1` and `threads=4` because integer addition commutes. Anything
//! scheduling-dependent — wall-clock time, cancellation polls, I/O retry
//! counters — is quarantined in the segregated `timings` section, so the
//! rest of the document can be byte-compared across runs.
//!
//! The split, concretely:
//!
//! * [`Obs::incr`] / [`Obs::record`] / span **counts** — deterministic.
//!   Only record quantities derived from the algorithm's data, never from
//!   scheduling.
//! * [`Obs::volatile_incr`] and span **wall time** — land in `timings`.
//!   Poll counts, worker restarts, buffer traffic, elapsed nanoseconds.
//!
//! A second discipline this crate anchors: the `obs-discipline` xtask lint
//! bans ad-hoc `Instant::now()` outside this crate, so every timing either
//! flows through a [`SpanGuard`] (aggregated, reported) or an explicit
//! [`Stopwatch`] (for deadline arithmetic) — never an unreported
//! one-off measurement.
//!
//! The crate is dependency-free: handles are `Arc<Mutex<..>>` clones, maps
//! are `BTreeMap` (sorted, hasher-free iteration), and the JSON renderer
//! is hand-rolled so the byte layout is owned by this file and versioned
//! by [`SCHEMA`].

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Version tag of the JSON document layout. Bump on any change to the
/// top-level sections or the histogram encoding; the schema-stability
/// snapshot test in this crate pins the exact bytes.
pub const SCHEMA: &str = "rejecto-metrics/v1";

/// A power-of-two-bucket histogram over `u64` samples.
///
/// Bucket `b` counts samples whose bit length is `b` (so bucket 0 holds
/// exactly the zero samples, bucket 7 holds `64..=127`, ...). Count, sum,
/// min, and max are exact integers; nothing here is a float, so merged or
/// re-ordered recording yields identical state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let bit_len = u64::BITS - v.leading_zeros();
        *self.buckets.entry(bit_len).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanStats {
    /// Completed entries (deterministic: one per scope that ran).
    count: u64,
    /// Total wall time spent inside the scope (timings section only).
    wall_ns: u128,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    volatile: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A cheap, cloneable metrics registry handle. All clones share state, so
/// one `Obs` threaded through detector, solver, and cluster accumulates a
/// single document.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Arc<Mutex<Inner>>,
}

impl Obs {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Obs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Recording must never abort a run: if a panicking thread poisoned
        // the registry, keep serving the data that is there.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `n` to the **deterministic** counter at `path`. Only record
    /// algorithmic quantities here — anything scheduling-dependent belongs
    /// in [`Obs::volatile_incr`].
    pub fn incr(&self, path: &str, n: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(path) {
            Some(c) => *c += n,
            None => {
                inner.counters.insert(path.to_string(), n);
            }
        }
    }

    /// Adds `n` to the **volatile** counter at `path`, reported inside the
    /// `timings` section (exempt from byte-comparison).
    pub fn volatile_incr(&self, path: &str, n: u64) {
        let mut inner = self.lock();
        match inner.volatile.get_mut(path) {
            Some(c) => *c += n,
            None => {
                inner.volatile.insert(path.to_string(), n);
            }
        }
    }

    /// Records one sample into the deterministic histogram at `path`.
    pub fn record(&self, path: &str, v: u64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(path) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                inner.histograms.insert(path.to_string(), h);
            }
        }
    }

    /// Opens a hierarchical span at `path` (convention:
    /// `detect/round/sweep/k_index/kl_pass`). The returned guard records on
    /// drop: the span *count* is deterministic, the wall time goes to the
    /// `timings` section. Bind it (`let _span = ...`) for the scope being
    /// measured.
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard { obs: self.clone(), path: path.to_string(), start: Instant::now() }
    }

    /// Current value of a deterministic counter (0 when never written).
    pub fn counter(&self, path: &str) -> u64 {
        self.lock().counters.get(path).copied().unwrap_or(0)
    }

    /// Current value of a volatile counter (0 when never written).
    pub fn volatile(&self, path: &str) -> u64 {
        self.lock().volatile.get(path).copied().unwrap_or(0)
    }

    /// Completed-entry count of a span path (0 when never entered).
    pub fn span_count(&self, path: &str) -> u64 {
        self.lock().spans.get(path).map(|s| s.count).unwrap_or(0)
    }

    /// Snapshot of a histogram, if any sample was recorded at `path`.
    pub fn histogram(&self, path: &str) -> Option<Histogram> {
        self.lock().histograms.get(path).cloned()
    }

    fn record_span(&self, path: &str, wall: Duration) {
        let mut inner = self.lock();
        let stats = match inner.spans.get_mut(path) {
            Some(s) => s,
            None => {
                inner.spans.insert(path.to_string(), SpanStats::default());
                inner
                    .spans
                    .get_mut(path)
                    .expect("span entry was inserted immediately above")
            }
        };
        stats.count += 1;
        stats.wall_ns += wall.as_nanos();
    }

    /// The full versioned JSON document, `timings` section included. The
    /// `timings` member is always the last top-level key, which is what
    /// lets [`strip_timings`] operate on the rendered text.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// The document **minus** the `timings` section: byte-identical across
    /// thread counts, worker counts, and recovered fault plans.
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_timings: bool) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));

        out.push_str("  \"counters\": {");
        render_u64_map(&mut out, inner.counters.iter().map(|(k, &v)| (k.as_str(), v)), "    ");
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (k, h) in &inner.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {}: {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": {{",
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            let mut bfirst = true;
            for (b, n) in &h.buckets {
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let _ = write!(out, " \"{b}\": {n}");
            }
            out.push_str(" } }");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"spans\": {");
        render_u64_map(&mut out, inner.spans.iter().map(|(k, s)| (k.as_str(), s.count)), "    ");
        out.push('}');

        if with_timings {
            out.push_str(",\n  \"timings\": {\n    \"span_wall_ns\": {");
            let mut first = true;
            for (k, s) in &inner.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n      {}: {}", json_str(k), s.wall_ns);
            }
            if !first {
                out.push_str("\n    ");
            }
            out.push_str("},\n    \"volatile\": {");
            let mut first = true;
            for (k, &v) in &inner.volatile {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n      {}: {}", json_str(k), v);
            }
            if !first {
                out.push_str("\n    ");
            }
            out.push_str("}\n  }");
        }
        out.push_str("\n}");
        out
    }

    /// A short human-readable rendering for `--metrics -`.
    pub fn human_summary(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = writeln!(out, "metrics ({SCHEMA})");
        if !inner.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &inner.counters {
                let _ = writeln!(out, "  {k:<44} {v}");
            }
        }
        if !inner.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<44} count {}  sum {}  min {}  max {}",
                    h.count, h.sum, h.min, h.max
                );
            }
        }
        if !inner.spans.is_empty() {
            let _ = writeln!(out, "spans (count, total wall):");
            for (k, s) in &inner.spans {
                let ms = s.wall_ns / 1_000_000;
                let frac = (s.wall_ns % 1_000_000) / 100_000;
                let _ = writeln!(out, "  {k:<44} {}  {ms}.{frac}ms", s.count);
            }
        }
        if !inner.volatile.is_empty() {
            let _ = writeln!(out, "volatile (timings section, run-dependent):");
            for (k, v) in &inner.volatile {
                let _ = writeln!(out, "  {k:<44} {v}");
            }
        }
        out
    }
}

/// Renders `"key": value` pairs of a string→u64 map section.
fn render_u64_map<'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a str, u64)>,
    indent: &str,
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n{indent}{}: {v}", json_str(k));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string rendering (paths are ASCII identifiers and `/`;
/// escape the general cases anyway so no input can corrupt the document).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Removes the `timings` member from a rendered metrics document, leaving
/// exactly the bytes of [`Obs::deterministic_json`]. Returns the input
/// unchanged when no `timings` member is present (already deterministic).
/// This is what the determinism harness byte-diffs: two `--metrics` files
/// from different thread/worker counts must agree after this strip.
pub fn strip_timings(json: &str) -> String {
    match json.find(",\n  \"timings\": {") {
        Some(at) => {
            let mut out = json[..at].to_string();
            out.push_str("\n}");
            // Preserve a trailing newline if the document had one.
            if json.ends_with('\n') {
                out.push('\n');
            }
            out
        }
        None => json.to_string(),
    }
}

/// The scope guard returned by [`Obs::span`]; records count and wall time
/// on drop.
#[must_use = "a span measures the scope it is bound to; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    path: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.record_span(&self.path, self.start.elapsed());
    }
}

/// The one sanctioned way to measure elapsed wall time outside this crate
/// (the `obs-discipline` lint bans ad-hoc `Instant::now()`): deadline
/// arithmetic and watchdog budgets wrap their clock in a `Stopwatch` so
/// every timing site is explicit and greppable.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let obs = Obs::new();
        assert_eq!(obs.counter("kl/passes"), 0);
        obs.incr("kl/passes", 2);
        obs.incr("kl/passes", 3);
        assert_eq!(obs.counter("kl/passes"), 5);
        assert_eq!(obs.volatile("kl/passes"), 0, "sections are separate namespaces");
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.incr("detect/rounds", 1);
        clone.volatile_incr("cancel/polls", 7);
        assert_eq!(obs.counter("detect/rounds"), 1);
        assert_eq!(obs.volatile("cancel/polls"), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 127, 128] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 265);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 128);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 127 → 7; 128 → 8.
        let got: Vec<(u32, u64)> = h.buckets.iter().map(|(&b, &n)| (b, n)).collect();
        assert_eq!(got, vec![(0, 1), (1, 1), (2, 2), (3, 1), (7, 1), (8, 1)]);
    }

    #[test]
    fn span_guard_records_count_on_drop() {
        let obs = Obs::new();
        {
            let _outer = obs.span("detect");
            for _ in 0..3 {
                let _inner = obs.span("detect/round");
            }
            assert_eq!(obs.span_count("detect"), 0, "open span not yet recorded");
        }
        assert_eq!(obs.span_count("detect"), 1);
        assert_eq!(obs.span_count("detect/round"), 3);
    }

    #[test]
    fn deterministic_json_is_order_insensitive_and_timing_free() {
        let a = Obs::new();
        a.incr("x", 1);
        a.incr("y", 2);
        a.volatile_incr("polls", 10);
        let b = Obs::new();
        b.volatile_incr("polls", 99_999);
        b.incr("y", 2);
        b.incr("x", 1);
        {
            let _span_only_wall_differs = a.span("s");
        }
        {
            let _span_only_wall_differs = b.span("s");
        }
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(
            a.deterministic_json(),
            a.to_json(),
            "the full document must carry the timings section"
        );
    }

    #[test]
    fn strip_timings_recovers_the_deterministic_document() {
        let obs = Obs::new();
        obs.incr("detect/rounds", 2);
        obs.record("detect/checkpoint_bytes", 100);
        obs.volatile_incr("io/worker_restarts", 1);
        {
            let _span = obs.span("detect");
        }
        assert_eq!(strip_timings(&obs.to_json()), obs.deterministic_json());
        // Idempotent, and a trailing newline (file form) is preserved.
        assert_eq!(strip_timings(&obs.deterministic_json()), obs.deterministic_json());
        let file_form = format!("{}\n", obs.to_json());
        assert_eq!(strip_timings(&file_form), format!("{}\n", obs.deterministic_json()));
    }

    /// Schema-stability snapshot: the exact bytes of the deterministic
    /// document. Any layout change must bump [`SCHEMA`] and update this
    /// expectation deliberately.
    #[test]
    fn schema_snapshot_is_stable() {
        let obs = Obs::new();
        obs.incr("detect/rounds", 2);
        obs.incr("kl/moves_committed", 41);
        obs.record("detect/checkpoint_bytes", 1000);
        obs.record("detect/checkpoint_bytes", 0);
        obs.volatile_incr("cancel/polls", 9);
        {
            let _span = obs.span("detect");
        }
        let expected = concat!(
            "{\n",
            "  \"schema\": \"rejecto-metrics/v1\",\n",
            "  \"counters\": {\n",
            "    \"detect/rounds\": 2,\n",
            "    \"kl/moves_committed\": 41\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"detect/checkpoint_bytes\": { \"count\": 2, \"sum\": 1000, ",
            "\"min\": 0, \"max\": 1000, \"buckets\": { \"0\": 1, \"10\": 1 } }\n",
            "  },\n",
            "  \"spans\": {\n",
            "    \"detect\": 1\n",
            "  }\n",
            "}"
        );
        assert_eq!(obs.deterministic_json(), expected);
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let obs = Obs::new();
        let expected = concat!(
            "{\n",
            "  \"schema\": \"rejecto-metrics/v1\",\n",
            "  \"counters\": {},\n",
            "  \"histograms\": {},\n",
            "  \"spans\": {}\n",
            "}"
        );
        assert_eq!(obs.deterministic_json(), expected);
        let full = obs.to_json();
        assert!(full.contains("\"timings\""));
        assert_eq!(strip_timings(&full), expected);
    }

    #[test]
    fn json_strings_escape_the_dangerous_cases() {
        assert_eq!(json_str("a/b"), "\"a/b\"");
        assert_eq!(json_str("q\"x\\y\n"), "\"q\\\"x\\\\y\\n\"");
    }

    #[test]
    fn human_summary_mentions_every_section_present() {
        let obs = Obs::new();
        obs.incr("detect/rounds", 1);
        obs.record("detect/checkpoint_bytes", 64);
        obs.volatile_incr("cancel/polls", 3);
        {
            let _span = obs.span("detect");
        }
        let s = obs.human_summary();
        assert!(s.contains("counters:"), "{s}");
        assert!(s.contains("detect/rounds"), "{s}");
        assert!(s.contains("histograms:"), "{s}");
        assert!(s.contains("spans"), "{s}");
        assert!(s.contains("volatile"), "{s}");
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed() <= Duration::from_secs(60), "sanity: monotonic and small");
    }
}
