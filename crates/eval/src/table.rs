//! A minimal fixed-width text-table renderer for experiment output.
//!
//! The benchmark harnesses print paper-style tables with it:
//!
//! ```
//! use eval::table::Table;
//! let mut t = Table::new(["graph", "precision"]);
//! t.row(["Facebook".to_string(), "0.98".to_string()]);
//! let s = t.render();
//! assert!(s.contains("Facebook"));
//! ```

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let measure = |row: &[String], width: &mut Vec<usize>| {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        };
        measure(&self.header, &mut width);
        for r in &self.rows {
            measure(r, &mut width);
        }

        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in width.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
                if i + 1 < width.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 significant decimals, the precision the paper's
/// plots are read at.
pub fn fnum(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row share the second-column start offset.
        let pos_header = lines[0].find("long-header").expect("header present in rendering");
        let pos_row = lines[2].find('1').expect("row present in rendering");
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fnum_fixes_decimals() {
        assert_eq!(fnum(0.5), "0.5000");
        assert_eq!(fnum(1.0 / 3.0), "0.3333");
    }
}
