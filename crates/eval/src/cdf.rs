//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples.
///
/// Used by the measurement-study harness to reproduce the friend-attribute
/// CDFs of Figures 3–5.
///
/// ```
/// let cdf = eval::Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; non-finite samples are dropped.
    pub fn from_samples<I>(samples: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0.0 for an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), as the smallest sample
    /// `x` with `eval(x) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let pos = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[pos - 1]
    }

    /// Samples the CDF at `points` evenly spaced x-values spanning the data
    /// range, returning `(x, P(X <= x))` pairs — the plottable curve.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_inclusive() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn quantiles_match_by_hand() {
        let cdf = Cdf::from_samples([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.26), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
        assert_eq!(cdf.quantile(0.0), 10.0);
    }

    #[test]
    fn drops_non_finite() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn curve_spans_range() {
        let cdf = Cdf::from_samples([0.0, 5.0, 10.0]);
        let curve = cdf.curve(3);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[2].0, 10.0);
        assert_eq!(curve[2].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Cdf::from_samples([]).quantile(0.5);
    }
}
