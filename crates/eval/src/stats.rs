//! Summary statistics for replicated experiment runs.

/// Mean/dispersion summary of a sample of measurements.
///
/// ```
/// let s = eval::Summary::from_samples([1.0, 2.0, 3.0]).expect("samples are non-empty");
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert!((s.std - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single
    /// sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes finite samples; returns `None` for an empty (or
    /// all-non-finite) input.
    pub fn from_samples<I>(samples: I) -> Option<Summary>
    where
        I: IntoIterator<Item = f64>,
    {
        let xs: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64; // xtask-allow: float-determinism: sequential sum over a materialized Vec in index order
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64 // xtask-allow: float-determinism: sequential sum over a materialized Vec in index order
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary { n, mean, std: var.sqrt(), min, max })
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·std/√n`; 0 for a single sample).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// Renders as `mean ± ci95` with 4 decimals.
    pub fn display(&self) -> String {
        if self.n < 2 {
            format!("{:.4}", self.mean)
        } else {
            format!("{:.4} ± {:.4}", self.mean, self.ci95())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_by_hand() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).expect("samples are non-empty");
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 9.0));
    }

    #[test]
    fn single_sample_has_zero_dispersion() {
        let s = Summary::from_samples([3.5]).expect("samples are non-empty");
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.display(), "3.5000");
    }

    #[test]
    fn empty_input_is_none() {
        assert!(Summary::from_samples([]).is_none());
        assert!(Summary::from_samples([f64::NAN]).is_none());
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few = Summary::from_samples([0.0, 1.0]).expect("samples are non-empty");
        let many = Summary::from_samples((0..32).map(|i| (i % 2) as f64)).expect("samples are non-empty");
        assert!(many.ci95() < few.ci95());
    }

    #[test]
    fn display_includes_interval() {
        let s = Summary::from_samples([1.0, 2.0, 3.0]).expect("samples are non-empty");
        assert!(s.display().contains('±'));
    }
}
