//! Evaluation utilities for the Rejecto experiments.
//!
//! * [`precision_recall`] — the paper's headline metric (§VI-A): both
//!   schemes declare exactly as many suspects as there are injected fakes,
//!   so precision and recall coincide;
//! * [`auc`] — area under the ROC curve of a ranking, used to score
//!   SybilRank in the defense-in-depth experiment (Fig 16);
//! * [`Cdf`] — empirical CDFs for the measurement-study figures (Figs 3–5);
//! * [`Summary`] — mean/std/CI summaries for replicated experiment runs;
//! * [`table`] — a fixed-width text-table renderer for harness output.

#![forbid(unsafe_code)]

mod cdf;
mod ranking;
mod stats;
pub mod table;

pub use cdf::Cdf;
pub use ranking::{auc, roc_curve};
pub use stats::Summary;

/// Precision of a declared suspect set against ground truth, with the
/// number of true positives exposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Correctly declared fakes.
    pub true_positives: usize,
    /// Total declared suspects.
    pub declared: usize,
    /// Total actual fakes.
    pub actual: usize,
}

impl PrecisionRecall {
    /// `true_positives / declared`; 1.0 when nothing was declared.
    pub fn precision(&self) -> f64 {
        if self.declared == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.declared as f64
        }
    }

    /// `true_positives / actual`; 1.0 when there are no actual fakes.
    pub fn recall(&self) -> f64 {
        if self.actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.actual as f64
        }
    }
}

/// Scores a declared suspect set against a ground-truth fake mask
/// (`is_fake[i]` is true for fake node `i`; suspects are node indices).
///
/// # Panics
///
/// Panics if a suspect index is out of range of the mask.
pub fn precision_recall(suspects: &[usize], is_fake: &[bool]) -> PrecisionRecall {
    let tp = suspects.iter().filter(|&&s| is_fake[s]).count();
    PrecisionRecall {
        true_positives: tp,
        declared: suspects.len(),
        actual: is_fake.iter().filter(|&&f| f).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let is_fake = vec![false, true, true, false];
        let pr = precision_recall(&[1, 2], &is_fake);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn half_right() {
        let is_fake = vec![false, true, true, false];
        let pr = precision_recall(&[1, 3], &is_fake);
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 0.5);
    }

    #[test]
    fn equal_declared_and_actual_makes_precision_equal_recall() {
        // The paper's protocol: declare exactly as many as injected.
        let is_fake = vec![true, true, false, false, true];
        let pr = precision_recall(&[0, 2, 4], &is_fake);
        assert_eq!(pr.precision(), pr.recall());
    }

    #[test]
    fn empty_declarations_are_vacuously_precise() {
        let pr = precision_recall(&[], &[true, false]);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 0.0);
    }

    #[test]
    fn no_actual_fakes_gives_full_recall() {
        let pr = precision_recall(&[0], &[false, false]);
        assert_eq!(pr.recall(), 1.0);
        assert_eq!(pr.precision(), 0.0);
    }
}
