//! Ranking-quality metrics: ROC curves and AUC.

/// Area under the ROC curve for a scored ranking.
///
/// `score[i]` is a *trust-like* score (higher = more legitimate) and
/// `is_positive[i]` marks the positive class (Sybils). The returned AUC is
/// the probability that a uniformly random Sybil scores **lower** than a
/// uniformly random non-Sybil — exactly the statistic SybilRank's evaluation
/// uses ("area under the ROC curve" with Sybils ranked to the bottom).
/// Ties count half.
///
/// Returns 0.5 when either class is empty (no ranking information).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// // Sybils (true) all score below non-Sybils: perfect ranking.
/// let auc = eval::auc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]);
/// assert_eq!(auc, 1.0);
/// ```
pub fn auc(score: &[f64], is_positive: &[bool]) -> f64 {
    assert_eq!(score.len(), is_positive.len(), "score and label lengths differ");
    let n_pos = is_positive.iter().filter(|&&p| p).count();
    let n_neg = is_positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Mann–Whitney U via rank sums (average ranks for ties).
    let mut idx: Vec<usize> = (0..score.len()).collect();
    idx.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && score[idx[j + 1]] == score[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of the tie group [i, j].
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &x in &idx[i..=j] {
            if is_positive[x] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u_pos = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    // u_pos counts (sybil, legit) pairs where the sybil ranks higher;
    // we want the complement: sybils ranked lower than legits.
    1.0 - u_pos / (n_pos as f64 * n_neg as f64)
}

/// ROC curve points `(false_positive_rate, true_positive_rate)` obtained by
/// sweeping a threshold from the lowest score upward and flagging everything
/// at or below it as positive. Includes the `(0,0)` and `(1,1)` endpoints.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn roc_curve(score: &[f64], is_positive: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(score.len(), is_positive.len(), "score and label lengths differ");
    let n_pos = is_positive.iter().filter(|&&p| p).count().max(1) as f64;
    let n_neg = (is_positive.len() - is_positive.iter().filter(|&&p| p).count()).max(1) as f64;
    let mut idx: Vec<usize> = (0..score.len()).collect();
    idx.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
    let mut pts = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && score[idx[j + 1]] == score[idx[i]] {
            j += 1;
        }
        for &x in &idx[i..=j] {
            if is_positive[x] {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        pts.push((fp as f64 / n_neg, tp as f64 / n_pos));
        i = j + 1;
    }
    if *pts.last().expect("curve is non-empty") != (1.0, 1.0) {
        pts.push((1.0, 1.0));
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        assert_eq!(auc(&[0.0, 0.1, 0.9, 1.0], &[true, true, false, false]), 1.0);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        assert_eq!(auc(&[0.9, 1.0, 0.0, 0.1], &[true, true, false, false]), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]), 0.5);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.2], &[true, true]), 0.5);
    }

    #[test]
    fn partial_overlap_matches_by_hand() {
        // Sybil scores: 0.1, 0.6; legit: 0.4, 0.8.
        // Pairs with sybil < legit: (0.1,0.4), (0.1,0.8), (0.6,0.8) = 3 of 4.
        let a = auc(&[0.1, 0.6, 0.4, 0.8], &[true, true, false, false]);
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_hits_endpoints() {
        let pts = roc_curve(&[0.1, 0.2, 0.3, 0.4], &[true, false, true, false]);
        assert_eq!(*pts.first().expect("curve has endpoints"), (0.0, 0.0));
        assert_eq!(*pts.last().expect("curve has endpoints"), (1.0, 1.0));
    }

    #[test]
    fn roc_curve_of_perfect_ranking_is_step() {
        let pts = roc_curve(&[0.0, 0.1, 0.9, 1.0], &[true, true, false, false]);
        // After the two sybils: TPR 1, FPR 0.
        assert!(pts.contains(&(0.0, 1.0)));
    }
}
