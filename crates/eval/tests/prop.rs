//! Property-based tests for the evaluation metrics.

use eval::{auc, precision_recall, Cdf};
use proptest::prelude::*;

proptest! {
    /// AUC is always in [0, 1], and flipping the score order flips the AUC
    /// around 0.5.
    #[test]
    fn auc_is_bounded_and_antisymmetric(
        scores in proptest::collection::vec(0.0f64..1.0, 2..64),
        labels in proptest::collection::vec(any::<bool>(), 2..64),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let a = auc(scores, labels);
        prop_assert!((0.0..=1.0).contains(&a));
        let flipped: Vec<f64> = scores.iter().map(|s| -s).collect();
        let b = auc(&flipped, labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "a={a} b={b}");
    }

    /// Adding a constant to every score never changes the AUC.
    #[test]
    fn auc_is_translation_invariant(
        scores in proptest::collection::vec(0.0f64..1.0, 4..32),
        labels in proptest::collection::vec(any::<bool>(), 4..32),
        shift in -5.0f64..5.0,
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let shifted: Vec<f64> = scores.iter().map(|s| s + shift).collect();
        prop_assert!((auc(scores, labels) - auc(&shifted, labels)).abs() < 1e-9);
    }

    /// Precision and recall coincide whenever declared == actual count.
    #[test]
    fn protocol_precision_equals_recall(
        is_fake in proptest::collection::vec(any::<bool>(), 1..64),
        pick in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let n = is_fake.len().min(pick.len());
        let is_fake = &is_fake[..n];
        let actual = is_fake.iter().filter(|&&f| f).count();
        // Declare exactly `actual` suspects (arbitrary subset).
        let mut suspects: Vec<usize> =
            (0..n).filter(|&i| pick[i]).take(actual).collect();
        let mut i = 0;
        while suspects.len() < actual {
            if !suspects.contains(&i) {
                suspects.push(i);
            }
            i += 1;
        }
        let pr = precision_recall(&suspects, is_fake);
        prop_assert_eq!(pr.declared, pr.actual);
        prop_assert!((pr.precision() - pr.recall()).abs() < 1e-12);
    }

    /// A CDF is monotone nondecreasing and hits 1 at its max sample.
    #[test]
    fn cdf_is_monotone(samples in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let cdf = Cdf::from_samples(samples.clone());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = 0.0;
        let steps = 16;
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            let y = cdf.eval(x);
            prop_assert!(y >= last - 1e-12, "CDF decreased at {x}");
            last = y;
        }
        prop_assert_eq!(cdf.eval(hi), 1.0);
        prop_assert_eq!(cdf.eval(lo - 1.0), 0.0);
    }

    /// quantile() inverts eval(): eval(quantile(q)) >= q.
    #[test]
    fn quantile_inverts_eval(
        samples in proptest::collection::vec(-50.0f64..50.0, 1..40),
        q in 0.01f64..1.0,
    ) {
        let cdf = Cdf::from_samples(samples);
        let x = cdf.quantile(q);
        prop_assert!(cdf.eval(x) >= q - 1e-12);
    }
}

proptest! {
    /// The trapezoid-rule area under `roc_curve` equals `auc` when scores
    /// are unique (no ties to smear).
    #[test]
    fn roc_area_matches_auc(
        base in proptest::collection::vec(0.0f64..1.0, 4..48),
        labels in proptest::collection::vec(any::<bool>(), 4..48),
    ) {
        let n = base.len().min(labels.len());
        // De-duplicate scores deterministically by adding a per-index
        // epsilon far above f64 noise but below the data scale.
        let scores: Vec<f64> = base[..n]
            .iter()
            .enumerate()
            .map(|(i, s)| s + i as f64 * 1e-7)
            .collect();
        let labels = &labels[..n];
        let n_pos = labels.iter().filter(|&&p| p).count();
        if n_pos == 0 || n_pos == n {
            return Ok(());
        }
        let curve = eval::roc_curve(&scores, labels);
        let mut area = 0.0;
        for w in curve.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            area += (x1 - x0) * (y0 + y1) / 2.0;
        }
        // roc_curve flags LOW scores as positive; auc() measures the
        // probability a positive scores low. They agree.
        prop_assert!((area - eval::auc(&scores, labels)).abs() < 1e-9,
            "area {area} vs auc {}", eval::auc(&scores, labels));
    }
}
