//! Property-based tests for the bucket list and the extended KL solver.

use kl::{BucketList, ExtendedKl, ExtendedKlConfig, KParam};
use proptest::prelude::*;
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId, Partition};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, i64),
    Remove(u32),
    Update(u32, i64),
    PopMax,
}

fn op_strategy(nodes: u32, bound: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes, -bound..=bound).prop_map(|(n, g)| Op::Insert(n, g)),
        (0..nodes).prop_map(Op::Remove),
        (0..nodes, -bound..=bound).prop_map(|(n, g)| Op::Update(n, g)),
        Just(Op::PopMax),
    ]
}

proptest! {
    /// The bucket list behaves exactly like a naive (gain, node) model
    /// under arbitrary operation sequences. Invalid operations are skipped
    /// on both sides.
    #[test]
    fn bucket_list_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(12, 20), 1..200),
    ) {
        let mut bucket = BucketList::new(12, -20, 20);
        let mut model: Vec<(u32, i64)> = Vec::new(); // insertion order

        for op in ops {
            match op {
                Op::Insert(n, g) => {
                    if !bucket.contains(n) {
                        bucket.insert(n, g);
                        model.push((n, g));
                    }
                }
                Op::Remove(n) => {
                    if bucket.contains(n) {
                        bucket.remove(n);
                        model.retain(|&(m, _)| m != n);
                    }
                }
                Op::Update(n, g) => {
                    if bucket.contains(n) {
                        bucket.update(n, g);
                        model.retain(|&(m, _)| m != n);
                        model.push((n, g));
                    }
                }
                Op::PopMax => {
                    let got = bucket.pop_max();
                    let expect_gain = model.iter().map(|&(_, g)| g).max();
                    match (got, expect_gain) {
                        (None, None) => {}
                        (Some((n, g)), Some(eg)) => {
                            prop_assert_eq!(g, eg, "pop_max returned wrong gain");
                            // Ties break arbitrarily, but the popped entry
                            // must be the node the bucket returned.
                            let pos = model.iter().position(|&(m, _)| m == n)
                                .expect("model must contain the popped node");
                            prop_assert_eq!(model[pos].1, eg);
                            model.remove(pos);
                        }
                        (got, expect) => {
                            prop_assert!(false, "mismatch: {:?} vs {:?}", got, expect);
                        }
                    }
                }
            }
            prop_assert_eq!(bucket.len(), model.len());
            if let Some(max) = model.iter().map(|&(_, g)| g).max() {
                prop_assert_eq!(bucket.peek_max_gain(), Some(max));
            }
        }
    }
}

proptest! {
    /// `geometric_sequence` is strictly increasing under the exact
    /// rational order for any bounds, factor, and denominator resolution —
    /// including coarse denominators where rounding collapses many sweep
    /// points onto few rationals. Also: the sequence is non-empty, starts
    /// no higher than the rationalized `k_min`, and never exceeds the
    /// rationalized `k_max`.
    #[test]
    fn geometric_sequence_is_strictly_monotone(
        k_min in 0.01f64..5.0,
        span in 0.0f64..50.0,
        factor in 1.01f64..4.0,
        den in 1u64..200,
    ) {
        let k_max = k_min + span;
        let seq = KParam::geometric_sequence(k_min, k_max, factor, den);
        prop_assert!(!seq.is_empty());
        for w in seq.windows(2) {
            prop_assert!(
                w[0] < w[1],
                "sequence not strictly increasing: {} then {}", w[0], w[1]
            );
        }
        let lo = KParam::approximate(k_min, den);
        let hi = KParam::approximate(k_max, den);
        prop_assert!(seq[0] <= lo, "first member {} above rationalized k_min {}", seq[0], lo);
        prop_assert!(
            *seq.last().expect("sequence is non-empty") <= hi,
            "last member {} above rationalized k_max {}",
            seq.last().expect("sequence is non-empty"),
            hi
        );
    }
}

fn augmented_graph(n: usize) -> impl Strategy<Value = AugmentedGraph> {
    let nodes = 3..n;
    nodes.prop_flat_map(|n| {
        let friend = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 2);
        let reject = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 2);
        (Just(n), friend, reject).prop_map(|(n, friend, reject)| {
            let mut b = AugmentedGraphBuilder::new(n);
            for (u, v) in friend {
                b.add_friendship(NodeId(u), NodeId(v));
            }
            for (u, v) in reject {
                b.add_rejection(NodeId(u), NodeId(v));
            }
            b.build()
        })
    })
}

proptest! {
    /// The committed objective never worsens relative to the initial
    /// partition, for any graph and any k.
    #[test]
    fn extended_kl_never_worsens(
        g in augmented_graph(16),
        num in 1u64..12,
        den in 1u64..12,
    ) {
        let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(KParam::new(num, den)));
        let init = Partition::all_legit(&g);
        let before = kl.objective(&init);
        let out = kl.run(init);
        prop_assert!(out.objective <= before,
            "objective worsened: {} > {}", out.objective, before);
        // And the reported objective matches the partition it returns.
        prop_assert_eq!(out.objective, kl.objective(&out.partition));
    }

    /// Locked nodes never move, regardless of graph or k.
    #[test]
    fn locked_nodes_never_move(
        g in augmented_graph(12),
        locked_bits in proptest::collection::vec(any::<bool>(), 12),
        num in 1u64..8,
    ) {
        let n = g.num_nodes();
        let mut kl = ExtendedKl::new(&g, ExtendedKlConfig::new(KParam::new(num, 2)));
        let locked: Vec<bool> = (0..n).map(|i| locked_bits[i % locked_bits.len()]).collect();
        for (i, &l) in locked.iter().enumerate() {
            if l {
                kl.lock(NodeId(i as u32));
            }
        }
        let init = Partition::all_legit(&g);
        let out = kl.run(init);
        for (i, &l) in locked.iter().enumerate() {
            if l {
                prop_assert_eq!(
                    out.partition.region(NodeId(i as u32)),
                    rejection::Region::Legit
                );
            }
        }
    }
}
