//! Tests for the `debug-invariants` checkers: they must stay silent on a
//! faithful gain index and panic on a corrupted one. Compiled only when
//! the feature is on (`cargo test --features debug-invariants -p kl`).
#![cfg(feature = "debug-invariants")]

use kl::{BucketList, ExtendedKl, ExtendedKlConfig, KParam};
use rejection::{AugmentedGraph, AugmentedGraphBuilder, NodeId, Partition};

/// Three legit users in a path; one spammer rejected by two of them.
fn fixture() -> AugmentedGraph {
    let mut b = AugmentedGraphBuilder::new(4);
    b.add_friendship(NodeId(0), NodeId(1));
    b.add_friendship(NodeId(1), NodeId(2));
    b.add_friendship(NodeId(0), NodeId(3));
    b.add_rejection(NodeId(1), NodeId(3));
    b.add_rejection(NodeId(2), NodeId(3));
    b.build()
}

fn k() -> KParam {
    KParam::new(1, 1)
}

/// The gain `ExtendedKl` indexes, recomputed through the public
/// `switch_delta` primitive: `num·Δrejections − den·Δfriendships`.
fn true_gain(g: &AugmentedGraph, p: &Partition, u: NodeId) -> i64 {
    let (df, dr) = p.switch_delta(g, u);
    k().num() as i64 * dr - k().den() as i64 * df
}

fn faithful_index(g: &AugmentedGraph, p: &Partition) -> BucketList {
    let mut bucket = BucketList::new(g.num_nodes(), -16, 16);
    for u in g.nodes() {
        bucket.insert(u.0, true_gain(g, p, u));
    }
    bucket
}

#[test]
fn gain_checker_accepts_a_faithful_index() {
    let g = fixture();
    let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(k()));
    let p = Partition::all_legit(&g);
    let bucket = faithful_index(&g, &p);
    kl.assert_gain_index(&p, &bucket); // must not panic
}

#[test]
#[should_panic(expected = "gain index corrupt")]
fn gain_checker_catches_a_corrupted_bucket() {
    let g = fixture();
    let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(k()));
    let p = Partition::all_legit(&g);
    let mut bucket = faithful_index(&g, &p);
    // Deliberate corruption: nudge one node's indexed gain off the value
    // switch_delta derives — exactly the drift a wrong incremental
    // neighbor adjustment in one_pass would produce.
    let victim = NodeId(3);
    bucket.update(victim.0, true_gain(&g, &p, victim) + 3);
    kl.assert_gain_index(&p, &bucket);
}

#[test]
#[should_panic(expected = "gain index corrupt")]
fn gain_checker_catches_a_stale_index_after_partition_moves() {
    let g = fixture();
    let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(k()));
    let mut p = Partition::all_legit(&g);
    let bucket = faithful_index(&g, &p);
    // Move a node without refreshing the index: neighbors' gains go stale.
    p.switch(&g, NodeId(3));
    kl.assert_gain_index(&p, &bucket);
}

#[test]
fn structural_checker_accepts_a_live_bucket() {
    let mut b = BucketList::new(6, -5, 5);
    for (n, gain) in [(0u32, 3i64), (1, -2), (2, 3), (3, 0), (4, 5)] {
        b.insert(n, gain);
    }
    b.assert_consistent();
    b.update(1, 4);
    b.remove(2);
    b.adjust(0, -1);
    let _ = b.pop_max();
    b.assert_consistent();
}

#[test]
fn full_kl_run_passes_the_checkers_on_every_pass() {
    // End-to-end: `run` exercises assert_gain_index after the initial fill
    // and after every single move. A wrong incremental update anywhere
    // would panic here rather than silently degrade cut quality.
    let g = fixture();
    let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(k()));
    let out = kl.run(Partition::all_legit(&g));
    assert_eq!(out.partition.suspects(), vec![NodeId(3)]);
}
