//! Cooperative cancellation for long-running optimization loops.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the caller
//! that sets budgets (wall-clock deadline, global KL pass budget, or an
//! explicit cancel) and the inner loops that poll it at *pass boundaries*.
//! Nothing is ever pre-empted mid-pass: a loop that observes cancellation
//! finishes nothing further, marks its outcome interrupted, and returns the
//! best state it had — which is what lets the detection pipeline degrade to
//! a well-formed partial report instead of aborting.
//!
//! The token records *why* it tripped ([`CancelReason`]) exactly once: the
//! first cause wins, later causes are ignored, so diagnostics stay stable
//! even when a deadline and a pass budget expire in the same window.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called explicitly.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The global KL pass budget was exhausted.
    PassBudget,
}

const REASON_NONE: u8 = 0;
const REASON_CANCELLED: u8 = 1;
const REASON_DEADLINE: u8 = 2;
const REASON_PASS_BUDGET: u8 = 3;

/// Passes-left sentinel meaning "no pass budget configured".
const UNLIMITED: i64 = i64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    reason: AtomicU8,
    deadline: Mutex<Option<Instant>>,
    passes_left: AtomicI64,
    /// How many times [`CancelToken::is_cancelled`] was polled. Scheduling-
    /// dependent (parallel sweeps poll once per claimed job), so it is only
    /// ever reported as a *volatile* metric, never a deterministic one.
    polls: AtomicU64,
}

/// Shared cooperative-cancellation handle (see module docs).
///
/// Cloning is cheap and all clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token with no deadline and an unlimited pass budget.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline: Mutex::new(None),
                passes_left: AtomicI64::new(UNLIMITED),
                polls: AtomicU64::new(0),
            }),
        }
    }

    fn trip(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Cancelled => REASON_CANCELLED,
            CancelReason::Deadline => REASON_DEADLINE,
            CancelReason::PassBudget => REASON_PASS_BUDGET,
        };
        // First cause wins; later trips keep the original diagnosis.
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            code,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Trips the token explicitly.
    pub fn cancel(&self) {
        self.trip(CancelReason::Cancelled);
    }

    /// Arms a wall-clock deadline `timeout` from now. Replaces any earlier
    /// deadline; the *tighter* of repeated deadlines is kept.
    pub fn set_deadline_in(&self, timeout: Duration) {
        let at = Instant::now() + timeout;
        let mut slot = self
            .inner
            .deadline
            .lock()
            .expect("cancel-token deadline mutex poisoned");
        match *slot {
            Some(existing) if existing <= at => {}
            _ => *slot = Some(at),
        }
    }

    /// Arms a global pass budget: after `passes` successful
    /// [`consume_pass`](CancelToken::consume_pass) calls the token trips
    /// with [`CancelReason::PassBudget`].
    pub fn set_pass_budget(&self, passes: u64) {
        let clamped = i64::try_from(passes).unwrap_or(UNLIMITED);
        self.inner.passes_left.store(clamped, Ordering::Release);
    }

    /// Consumes one unit of the pass budget. Returns `false` (and trips the
    /// token) when the budget is exhausted or the token is already tripped.
    pub fn consume_pass(&self) -> bool {
        if self.is_cancelled() {
            return false;
        }
        if self.inner.passes_left.load(Ordering::Acquire) == UNLIMITED {
            return true;
        }
        let prev = self.inner.passes_left.fetch_sub(1, Ordering::AcqRel);
        if prev <= 0 {
            self.trip(CancelReason::PassBudget);
            return false;
        }
        true
    }

    /// Whether the token has tripped. Polls the deadline as a side effect,
    /// so a passed deadline is observed here without any timer thread.
    pub fn is_cancelled(&self) -> bool {
        self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let deadline = *self
            .inner
            .deadline
            .lock()
            .expect("cancel-token deadline mutex poisoned");
        if let Some(at) = deadline {
            if Instant::now() >= at {
                self.trip(CancelReason::Deadline);
                return true;
            }
        }
        false
    }

    /// Time left until the armed deadline: `None` when no deadline is
    /// armed, `Duration::ZERO` once it has passed. Lets callers that block
    /// on external events (e.g. a master waiting on a worker response)
    /// bound their wait so a hang can never outlive the run budget.
    pub fn time_remaining(&self) -> Option<Duration> {
        let deadline = *self
            .inner
            .deadline
            .lock()
            .expect("cancel-token deadline mutex poisoned");
        deadline.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// How many times [`is_cancelled`](CancelToken::is_cancelled) was
    /// polled across all clones of this token. The count depends on thread
    /// scheduling, so callers must report it only as a volatile metric.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// The first recorded trip cause, or `None` while untripped.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.inner.reason.load(Ordering::Acquire) {
            REASON_CANCELLED => Some(CancelReason::Cancelled),
            REASON_DEADLINE => Some(CancelReason::Deadline),
            REASON_PASS_BUDGET => Some(CancelReason::PassBudget),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert!(t.consume_pass(), "unlimited budget must never exhaust");
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn pass_budget_exhausts_after_exact_count() {
        let t = CancelToken::new();
        t.set_pass_budget(3);
        assert!(t.consume_pass());
        assert!(t.consume_pass());
        assert!(t.consume_pass());
        assert!(!t.consume_pass(), "fourth pass must be denied");
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::PassBudget));
    }

    #[test]
    fn zero_pass_budget_denies_immediately() {
        let t = CancelToken::new();
        t.set_pass_budget(0);
        assert!(!t.consume_pass());
        assert_eq!(t.reason(), Some(CancelReason::PassBudget));
    }

    #[test]
    fn elapsed_deadline_trips_on_poll() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn tighter_deadline_wins() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::from_secs(3600));
        t.set_deadline_in(Duration::from_millis(0));
        assert!(t.is_cancelled());
    }

    #[test]
    fn time_remaining_tracks_the_armed_deadline() {
        let t = CancelToken::new();
        assert_eq!(t.time_remaining(), None, "no deadline armed yet");
        t.set_deadline_in(Duration::from_secs(3600));
        let rem = t.time_remaining().expect("deadline was just armed");
        assert!(rem > Duration::from_secs(3500), "remaining {rem:?}");
        t.set_deadline_in(Duration::from_millis(0));
        assert_eq!(t.time_remaining(), Some(Duration::ZERO), "passed deadline saturates");
    }

    #[test]
    fn poll_count_is_shared_across_clones() {
        let t = CancelToken::new();
        assert_eq!(t.polls(), 0);
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(!clone.is_cancelled());
        assert_eq!(t.polls(), 2, "every clone's poll lands in one counter");
    }

    #[test]
    fn first_reason_is_kept() {
        let t = CancelToken::new();
        t.set_pass_budget(0);
        assert!(!t.consume_pass());
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::PassBudget));
    }
}
