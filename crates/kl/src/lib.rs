//! Kernighan–Lin partitioning, classic and extended (the paper's §IV-C/D).
//!
//! Three layers:
//!
//! * [`BucketList`] — the Fiduccia–Mattheyses gain structure: an array of
//!   intrusive doubly-linked lists indexed by integer gain, giving `O(1)`
//!   insert/remove/update and amortized-`O(1)` max-gain extraction. This is
//!   the optimization the paper cites for making KL effectively linear-time
//!   (§IV-C, \[21\]).
//! * [`classic`] — the textbook Kernighan–Lin bisection with node-*pair*
//!   interchanges on an undirected graph, kept as a reference
//!   implementation of the heuristic the paper builds on (Figure 7).
//! * [`ExtendedKl`] — the paper's Algorithm 1: single-node switches on a
//!   rejection-augmented graph, minimizing the weighted objective
//!   `|F(Ū,U)| − k·|R⟨Ū,U⟩|` with friendships at weight 1 and rejections at
//!   weight −k, seed nodes pinned, and the max-gain-prefix commit rule.
//!
//! The parameter `k` is a rational [`KParam`] (`num/den`), which keeps every
//! gain an exact integer `num·ΔR − den·ΔF` — no floating-point tie-break
//! instability in the bucket list.

#![forbid(unsafe_code)]

mod bucket;
mod cancel;
pub mod classic;
mod extended;
pub(crate) mod invariants;
mod kparam;

pub use bucket::BucketList;
pub use cancel::{CancelReason, CancelToken};
pub use extended::{ExtendedKl, ExtendedKlConfig, KlOutcome};
pub use kparam::KParam;
