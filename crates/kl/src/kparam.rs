use std::fmt;

/// The rejection weight `k` of the linear objective
/// `|F(Ū,U)| − k·|R⟨Ū,U⟩|`, held as an exact rational `num/den`.
///
/// Theorem 1 reduces the MAAR (ratio) objective to this family of linear
/// objectives; Rejecto sweeps `k` through a geometric sequence
/// ([`KParam::geometric_sequence`]) and keeps the cut with the lowest
/// friends-to-rejections ratio. A rational `k` makes every KL gain an exact
/// integer `num·ΔR − den·ΔF`.
///
/// ```
/// use kl::KParam;
/// let k = KParam::approximate(0.7, 64);
/// assert!((k.value() - 0.7).abs() < 1.0 / 64.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KParam {
    num: u64,
    den: u64,
}

impl KParam {
    /// An exact rational `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `num == 0` or `den == 0` (the objective requires `k > 0`).
    pub fn new(num: u64, den: u64) -> Self {
        assert!(num > 0, "k must be positive (zero numerator)"); // xtask-allow: no-panic: cold constructor validation, documented panic contract
        assert!(den > 0, "k denominator must be positive"); // xtask-allow: no-panic: cold constructor validation, documented panic contract
        let g = gcd(num, den);
        KParam { num: num / g, den: den / g }
    }

    /// The closest rational with the given denominator resolution
    /// (numerator at least 1, so the result is always positive).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and positive, or `den == 0`.
    pub fn approximate(k: f64, den: u64) -> Self {
        assert!(k.is_finite() && k > 0.0, "k must be finite and positive, got {k}"); // xtask-allow: no-panic: cold constructor validation, documented panic contract
        assert!(den > 0, "denominator resolution must be positive"); // xtask-allow: no-panic: cold constructor validation, documented panic contract
        let num = ((k * den as f64).round() as u64).max(1); // xtask-allow: lossy-cast: the f64→u64 rounding IS the approximation; k is finite-positive and den ≤ 2^53 converts exactly
        KParam::new(num, den)
    }

    /// Numerator (reduced).
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator (reduced).
    pub fn den(&self) -> u64 {
        self.den
    }

    /// The value `num/den` as a float.
    pub fn value(&self) -> f64 {
        self.num as f64 / self.den as f64 // xtask-allow: lossy-cast: display-precision conversion only; exact comparisons go through Ord
    }

    /// The geometric sweep `k_min, k_min·factor, …` capped at `k_max`,
    /// rationalized at resolution `den`. This is the paper's "iterate k
    /// through a geometric sequence" (§IV-D).
    ///
    /// The returned sequence is **strictly increasing** under the exact
    /// rational order ([`Ord`]): a candidate whose rationalization does
    /// not exceed the previous member is dropped. With coarse denominators
    /// rounding collapses nearby sweep points onto the same (or, through
    /// fraction reduction, a not-greater) rational, and a sweep that
    /// revisits a `k` would both waste a full KL run and break the
    /// "earliest sweep index wins" tie-break contract of the reduction.
    ///
    /// # Panics
    ///
    /// Panics if `k_min`, `k_max`, or `factor` are non-positive,
    /// `k_min > k_max`, or `factor <= 1`.
    pub fn geometric_sequence(k_min: f64, k_max: f64, factor: f64, den: u64) -> Vec<KParam> {
        assert!(k_min > 0.0 && k_max > 0.0, "k bounds must be positive"); // xtask-allow: no-panic: cold sweep-configuration validation, documented panic contract
        assert!(k_min <= k_max, "k_min {k_min} exceeds k_max {k_max}"); // xtask-allow: no-panic: cold sweep-configuration validation, documented panic contract
        assert!(factor > 1.0, "geometric factor must exceed 1"); // xtask-allow: no-panic: cold sweep-configuration validation, documented panic contract
        let mut out: Vec<KParam> = Vec::new();
        let mut k = k_min;
        loop {
            let p = KParam::approximate(k, den);
            if out.last().is_none_or(|last| p > *last) {
                out.push(p);
            }
            if k >= k_max {
                break;
            }
            k = (k * factor).min(k_max);
        }
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "geometric sweep must be strictly increasing"
        );
        out
    }
}

impl PartialOrd for KParam {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KParam {
    /// Exact rational order by cross-multiplication in `u128` (no float
    /// rounding, no overflow for any pair of reduced `u64` fractions).
    /// Consistent with `Eq`: reduced fractions are unique, so
    /// `a.cmp(&b) == Equal` iff `a == b`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let lhs = u128::from(self.num) * u128::from(other.den);
        let rhs = u128::from(other.num) * u128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for KParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_fractions() {
        let k = KParam::new(6, 4);
        assert_eq!((k.num(), k.den()), (3, 2));
        assert_eq!(k.value(), 1.5);
    }

    #[test]
    fn approximation_is_within_resolution() {
        let k = KParam::approximate(0.333, 100);
        assert!((k.value() - 0.333).abs() <= 0.005);
    }

    #[test]
    fn approximation_never_yields_zero() {
        let k = KParam::approximate(1e-9, 16);
        assert!(k.value() > 0.0);
    }

    #[test]
    fn geometric_sequence_covers_range() {
        let seq = KParam::geometric_sequence(0.1, 10.0, 2.0, 64);
        assert!(seq.first().expect("sweep is non-empty").value() <= 0.11);
        assert!((seq.last().expect("sweep is non-empty").value() - 10.0).abs() < 0.02);
        for w in seq.windows(2) {
            assert!(w[0].value() < w[1].value(), "sequence must increase");
        }
    }

    #[test]
    fn geometric_sequence_single_point() {
        let seq = KParam::geometric_sequence(1.0, 1.0, 2.0, 4);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].value(), 1.0);
    }

    #[test]
    fn exact_order_agrees_with_values_and_eq() {
        let a = KParam::new(1, 3);
        let b = KParam::new(1, 2);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(KParam::new(6, 4).cmp(&KParam::new(3, 2)), std::cmp::Ordering::Equal);
        // Cross-multiplication must not overflow on extreme fractions.
        assert!(KParam::new(1, u64::MAX) < KParam::new(u64::MAX, 1));
    }

    #[test]
    fn coarse_denominator_sequence_stays_strictly_increasing() {
        // At den = 1 every value below 1.5 rounds to 1/1; a merely
        // adjacent-dedup sequence would be fine here, but the constructor
        // must guarantee strictness for any shape.
        let seq = KParam::geometric_sequence(0.05, 20.0, 1.1, 1);
        for w in seq.windows(2) {
            assert!(w[0] < w[1], "non-increasing: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn display_shows_fraction() {
        assert_eq!(KParam::new(7, 2).to_string(), "7/2");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_numerator() {
        let _ = KParam::new(0, 3);
    }
}
