//! Release-strength structural checks, compiled only under the
//! `debug-invariants` feature.
//!
//! The hot-path bookkeeping in [`BucketList`] guards its preconditions
//! with `debug_assert!` (the kernel sits inside every worker's sweep and
//! must not abort release runs on a recoverable slip). The functions
//! here are the counterweight: full-structure walks that re-derive every
//! summary the `O(1)` operations maintain incrementally, and `assert!`
//! hard when the structure is corrupted. This module is the sanctioned
//! home for such aborts — a corrupted structure has no degraded answer
//! to give — and is exempted from the `no-panic`/`lossy-cast` lint
//! tiers by path (`cargo xtask check` skips `*invariants*` modules).

#![cfg(feature = "debug-invariants")]

use crate::bucket::{BucketList, NIL};

/// Walks every gain chain of `b` and checks:
///
/// * each chained node is marked present and filed under the bucket its
///   recorded gain maps to, with correct back-links;
/// * the chains reach exactly `len` nodes (no orphans, no cycles);
/// * no bucket above the high-water mark is non-empty;
/// * the present-flag population equals `len`.
///
/// # Panics
///
/// Panics on the first structural inconsistency.
pub fn assert_bucket_consistent(b: &BucketList) {
    let mut reached = 0usize;
    for (bi, &head) in b.heads.iter().enumerate() {
        assert!(
            bi <= b.high || head == NIL,
            "bucket {bi} non-empty above high-water mark {}",
            b.high
        );
        let mut prev = NIL;
        let mut cur = head;
        while cur != NIL {
            let i = cur as usize;
            assert!(b.present[i], "chained node {cur} not marked present");
            assert_eq!(
                b.gain[i] - b.min_gain,
                bi as i64,
                "node {cur} with gain {} filed in bucket {bi}",
                b.gain[i]
            );
            assert_eq!(b.prev[i], prev, "broken back-link at node {cur}");
            reached += 1;
            assert!(reached <= b.len, "cycle or orphan chain in bucket {bi}");
            prev = cur;
            cur = b.next[i];
        }
    }
    assert_eq!(reached, b.len, "{reached} nodes reachable but len = {}", b.len);
    let present = b.present.iter().filter(|&&p| p).count();
    assert_eq!(present, b.len, "{present} present flags but len = {}", b.len);
}
