/// The Fiduccia–Mattheyses *bucket list*: nodes indexed by integer gain.
///
/// An array of intrusive doubly-linked lists, one per possible gain value in
/// `[min_gain, max_gain]`, plus a moving high-water pointer. All of insert,
/// remove, and update are `O(1)`; extracting the max-gain node is `O(1)`
/// amortized (the pointer only rescans buckets that inserts have touched).
///
/// The paper adopts exactly this structure: "an array of linked lists,
/// called a bucket list, which indexes each node according to its potential
/// gain" (§IV-C).
///
/// This structure sits inside every KL sweep on every worker, so its
/// membership preconditions are `debug_assert!`s (release builds must not
/// abort a whole sweep on a recoverable bookkeeping slip; the
/// `debug-invariants` feature and [`assert_consistent`](Self::assert_consistent)
/// carry the release-strength checks). Out-of-range *gains* are still
/// rejected in every profile — filing a node in the wrong bucket would
/// silently corrupt the structure rather than degrade.
///
/// ```
/// use kl::BucketList;
/// let mut b = BucketList::new(3, -10, 10);
/// b.insert(0, 5);
/// b.insert(1, -2);
/// b.insert(2, 5);
/// assert_eq!(b.peek_max_gain(), Some(5));
/// let (node, gain) = b.pop_max().expect("bucket holds entries");
/// assert_eq!(gain, 5);
/// assert!(node == 0 || node == 2);
/// ```
#[derive(Debug, Clone)]
pub struct BucketList {
    pub(crate) min_gain: i64,
    /// `heads[g - min_gain]` = first node in the gain-`g` list, or `NIL`.
    pub(crate) heads: Vec<u32>,
    pub(crate) prev: Vec<u32>,
    pub(crate) next: Vec<u32>,
    pub(crate) gain: Vec<i64>,
    pub(crate) present: Vec<bool>,
    /// Highest bucket index that may be non-empty.
    pub(crate) high: usize,
    pub(crate) len: usize,
}

pub(crate) const NIL: u32 = u32::MAX;

/// Node ids are `u32` by construction; every slot array is indexed by id.
#[inline]
fn ix(node: u32) -> usize {
    node as usize // xtask-allow: lossy-cast: u32 → usize widens on every supported target
}

impl BucketList {
    /// Creates an empty bucket list for nodes `0..num_nodes` and gains in
    /// `[min_gain, max_gain]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_gain > max_gain`.
    pub fn new(num_nodes: usize, min_gain: i64, max_gain: i64) -> Self {
        let span = usize::try_from(max_gain.saturating_sub(min_gain).saturating_add(1))
            .expect("empty gain range: min_gain must be <= max_gain");
        BucketList {
            min_gain,
            heads: vec![NIL; span],
            prev: vec![NIL; num_nodes],
            next: vec![NIL; num_nodes],
            gain: vec![0; num_nodes],
            present: vec![false; num_nodes],
            high: 0,
            len: 0,
        }
    }

    /// Number of nodes currently indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no nodes are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `node` is currently indexed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn contains(&self, node: u32) -> bool {
        self.present[ix(node)]
    }

    /// Current gain of an indexed node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range; debug builds additionally assert
    /// that `node` is indexed (release builds return the last recorded
    /// gain).
    #[inline]
    pub fn gain_of(&self, node: u32) -> i64 {
        debug_assert!(self.present[ix(node)], "node {node} not in bucket list");
        self.gain[ix(node)]
    }

    /// Maps a gain to its bucket index, rejecting gains outside the
    /// configured `[min_gain, max_gain]` in every build profile: a
    /// mis-filed node would corrupt the chain structure silently.
    #[inline]
    fn bucket_of(&self, gain: i64) -> usize {
        gain.checked_sub(self.min_gain)
            .and_then(|d| usize::try_from(d).ok())
            .filter(|&b| b < self.heads.len())
            .expect("gain outside range configured at construction")
    }

    /// Indexes `node` with `gain`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `gain` is outside the
    /// configured range; debug builds additionally assert that `node` is
    /// not already indexed (a double insert in release corrupts the
    /// chain, which `assert_consistent` detects).
    pub fn insert(&mut self, node: u32, gain: i64) {
        debug_assert!(!self.present[ix(node)], "node {node} already in bucket list");
        let b = self.bucket_of(gain);
        let head = self.heads[b];
        self.next[ix(node)] = head;
        self.prev[ix(node)] = NIL;
        if head != NIL {
            self.prev[ix(head)] = node;
        }
        self.heads[b] = node;
        self.gain[ix(node)] = gain;
        self.present[ix(node)] = true;
        self.high = self.high.max(b);
        self.len += 1;
    }

    /// Removes `node` from the index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range; debug builds additionally assert
    /// that `node` is indexed.
    pub fn remove(&mut self, node: u32) {
        debug_assert!(self.present[ix(node)], "node {node} not in bucket list");
        let b = self.bucket_of(self.gain[ix(node)]);
        let (p, n) = (self.prev[ix(node)], self.next[ix(node)]);
        if p != NIL {
            self.next[ix(p)] = n;
        } else {
            self.heads[b] = n;
        }
        if n != NIL {
            self.prev[ix(n)] = p;
        }
        self.present[ix(node)] = false;
        self.len -= 1;
    }

    /// Changes the gain of an indexed node (no-op if unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `gain` is outside the
    /// configured range.
    pub fn update(&mut self, node: u32, gain: i64) {
        if self.gain[ix(node)] == gain && self.present[ix(node)] {
            return;
        }
        self.remove(node);
        self.insert(node, gain);
    }

    /// Adds `delta` to the gain of an indexed node.
    ///
    /// # Panics
    ///
    /// Panics as in [`update`](Self::update).
    pub fn adjust(&mut self, node: u32, delta: i64) {
        if delta == 0 {
            return;
        }
        let g = self.gain_of(node);
        self.update(node, g + delta);
    }

    /// The maximum gain among indexed nodes, if any.
    pub fn peek_max_gain(&mut self) -> Option<i64> {
        self.settle_high();
        if self.len == 0 {
            None
        } else {
            Some(self.min_gain + self.high as i64) // xtask-allow: lossy-cast: bucket index < heads.len() <= i64::MAX
        }
    }

    /// Removes and returns a node with the maximum gain.
    pub fn pop_max(&mut self) -> Option<(u32, i64)> {
        self.settle_high();
        if self.len == 0 {
            return None;
        }
        let node = self.heads[self.high];
        debug_assert_ne!(node, NIL);
        let gain = self.gain[ix(node)];
        self.remove(node);
        Some((node, gain))
    }

    /// Walks every gain chain and re-derives the summary state the `O(1)`
    /// operations maintain incrementally; see
    /// [`invariants::assert_bucket_consistent`](crate::invariants) for the
    /// checked properties. Compiled only under the `debug-invariants`
    /// feature.
    ///
    /// # Panics
    ///
    /// Panics on the first structural inconsistency.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_consistent(&self) {
        crate::invariants::assert_bucket_consistent(self);
    }

    fn settle_high(&mut self) {
        while self.high > 0 && self.heads[self.high] == NIL {
            self.high -= 1;
        }
    }

    /// Ids of up to `n` highest-gain nodes in gain order (ties in list
    /// order), without removing them. Used by the distributed runtime to
    /// decide which nodes to prefetch (§V: "the prefetched nodes are those
    /// with the highest potential move gains in the bucket list").
    pub fn peek_top(&mut self, n: usize) -> Vec<u32> {
        self.settle_high();
        let mut out = Vec::with_capacity(n.min(self.len));
        if self.len == 0 || n == 0 {
            return out;
        }
        let mut b = self.high + 1;
        while b > 0 && out.len() < n {
            b -= 1;
            let mut cur = self.heads[b];
            while cur != NIL && out.len() < n {
                out.push(cur);
                cur = self.next[ix(cur)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_gain_order() {
        let mut b = BucketList::new(4, -5, 5);
        b.insert(0, 1);
        b.insert(1, 5);
        b.insert(2, -3);
        b.insert(3, 2);
        let order: Vec<i64> = std::iter::from_fn(|| b.pop_max()).map(|(_, g)| g).collect();
        assert_eq!(order, vec![5, 2, 1, -3]);
        assert!(b.is_empty());
    }

    #[test]
    fn update_moves_between_buckets() {
        let mut b = BucketList::new(2, -10, 10);
        b.insert(0, 0);
        b.insert(1, 1);
        b.update(0, 7);
        assert_eq!(b.pop_max().expect("bucket holds entries"), (0, 7));
        assert_eq!(b.pop_max().expect("bucket holds entries"), (1, 1));
    }

    #[test]
    fn adjust_is_relative() {
        let mut b = BucketList::new(1, -10, 10);
        b.insert(0, 3);
        b.adjust(0, -5);
        assert_eq!(b.gain_of(0), -2);
    }

    #[test]
    fn remove_from_middle_of_chain() {
        let mut b = BucketList::new(3, 0, 0);
        b.insert(0, 0);
        b.insert(1, 0);
        b.insert(2, 0);
        b.remove(1);
        assert_eq!(b.len(), 2);
        let mut nodes: Vec<u32> = std::iter::from_fn(|| b.pop_max()).map(|(n, _)| n).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 2]);
    }

    #[test]
    fn high_pointer_recovers_after_raise() {
        let mut b = BucketList::new(2, -5, 5);
        b.insert(0, -5);
        assert_eq!(b.peek_max_gain(), Some(-5));
        b.insert(1, 5);
        assert_eq!(b.peek_max_gain(), Some(5));
        b.remove(1);
        assert_eq!(b.peek_max_gain(), Some(-5));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut b = BucketList::new(2, 0, 1);
        b.insert(0, 0);
        assert!(b.contains(0));
        assert!(!b.contains(1));
        b.remove(0);
        assert!(!b.contains(0));
    }

    #[test]
    #[should_panic(expected = "already in bucket list")]
    fn double_insert_panics() {
        let mut b = BucketList::new(1, 0, 1);
        b.insert(0, 0);
        b.insert(0, 1);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn out_of_range_gain_panics() {
        let mut b = BucketList::new(1, -1, 1);
        b.insert(0, 9);
    }

    #[test]
    #[should_panic(expected = "empty gain range")]
    fn inverted_gain_range_panics() {
        let _ = BucketList::new(1, 1, -1);
    }

    #[test]
    fn empty_pops_none() {
        let mut b = BucketList::new(0, 0, 0);
        assert_eq!(b.pop_max(), None);
        assert_eq!(b.peek_max_gain(), None);
    }
}

#[cfg(test)]
mod peek_tests {
    use super::*;

    #[test]
    fn peek_top_returns_gain_order_without_removal() {
        let mut b = BucketList::new(5, -5, 5);
        for (n, g) in [(0u32, 1i64), (1, 5), (2, -3), (3, 5), (4, 0)] {
            b.insert(n, g);
        }
        let top = b.peek_top(3);
        assert_eq!(top.len(), 3);
        assert_eq!(b.gain_of(top[0]), 5);
        assert_eq!(b.gain_of(top[1]), 5);
        assert_eq!(b.gain_of(top[2]), 1);
        assert_eq!(b.len(), 5, "peek must not remove");
    }

    #[test]
    fn peek_top_caps_at_population() {
        let mut b = BucketList::new(2, 0, 1);
        b.insert(0, 0);
        assert_eq!(b.peek_top(10), vec![0]);
        assert!(BucketList::new(1, 0, 0).peek_top(3).is_empty());
    }
}
