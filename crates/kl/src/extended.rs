use crate::{BucketList, CancelToken, KParam};
use rejection::{AugmentedGraph, NodeId, Partition, Region};

/// Exact conversion for the scaled-objective arithmetic. Weights and
/// edge counts all live far below `i64::MAX`; if one ever did not, the
/// gain products would overflow anyway, so this is where the range
/// assumption is enforced rather than silently wrapped.
fn obj_i64<T>(x: T) -> i64
where
    i64: TryFrom<T>,
{
    i64::try_from(x).ok().expect("objective operand exceeds i64 range")
}

/// Configuration for one [`ExtendedKl`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedKlConfig {
    /// The rejection weight `k` of the objective `|F(Ū,U)| − k·|R⟨Ū,U⟩|`.
    pub k: KParam,
    /// Safety cap on optimization passes. The algorithm terminates on its
    /// own ("until prefix == ∅"); in practice a handful of passes suffice
    /// and this cap only guards pathological inputs.
    pub max_passes: usize,
}

impl ExtendedKlConfig {
    /// A config with the given `k` and the default pass cap (16).
    pub fn new(k: KParam) -> Self {
        ExtendedKlConfig { k, max_passes: 16 }
    }
}

/// Result of an [`ExtendedKl`] run.
#[derive(Debug, Clone)]
pub struct KlOutcome {
    /// The locally optimal partition.
    pub partition: Partition,
    /// Final scaled objective `den·|F(Ū,U)| − num·|R⟨Ū,U⟩|` (the float
    /// objective times `den`; negative means the cut is rejection-heavy).
    pub objective: i64,
    /// Number of optimization passes performed.
    pub passes: usize,
    /// Total node switches committed across all passes.
    pub moves_committed: u64,
    /// `true` when a [`CancelToken`] stopped the run before natural
    /// convergence; the partition is the best committed state so far.
    pub interrupted: bool,
}

/// The paper's Algorithm 1: Kernighan–Lin extended to rejection-augmented
/// social graphs.
///
/// Differences from classic KL, per §IV-D:
///
/// * edges are *weighted*: friendships count `+1`, rejections count `−k`,
///   so the minimized cut weight is `|F(Ū,U)| − k·|R⟨Ū,U⟩|`;
/// * node-pair interchanges are replaced by **single-node switches**, since
///   the sizes of the two regions are not known in advance;
/// * *seeds* (§IV-F) can be [`lock`](ExtendedKl::lock)ed to a region: they
///   contribute to their neighbors' gains but are never switched, which
///   steers the search away from spurious low-ratio cuts inside the
///   legitimate region.
///
/// Each pass tentatively switches **every** unlocked node exactly once in
/// greedy max-gain order, "even if that leads to increment of the cross-part
/// edges", then commits the prefix of switches with the largest positive
/// cumulative gain. Passes repeat until no positive prefix exists.
///
/// ```
/// use kl::{ExtendedKl, ExtendedKlConfig, KParam};
/// use rejection::{AugmentedGraphBuilder, NodeId, Partition};
///
/// // One spammer (node 2) rejected by both legitimate users.
/// let mut b = AugmentedGraphBuilder::new(3);
/// b.add_friendship(NodeId(0), NodeId(1));
/// b.add_rejection(NodeId(0), NodeId(2));
/// b.add_rejection(NodeId(1), NodeId(2));
/// let g = b.build();
///
/// let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(KParam::new(1, 1)));
/// let out = kl.run(Partition::all_legit(&g));
/// assert_eq!(out.partition.suspects(), vec![NodeId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct ExtendedKl<'a> {
    g: &'a AugmentedGraph,
    cfg: ExtendedKlConfig,
    locked: Vec<bool>,
    cancel: Option<CancelToken>,
    obs: Option<rejecto_obs::Obs>,
}

impl<'a> ExtendedKl<'a> {
    /// Creates a solver over `g` with no locked nodes.
    pub fn new(g: &'a AugmentedGraph, cfg: ExtendedKlConfig) -> Self {
        ExtendedKl { g, cfg, locked: vec![false; g.num_nodes()], cancel: None, obs: None }
    }

    /// Attaches a [`CancelToken`] polled at every pass boundary. Each pass
    /// consumes one unit of the token's global pass budget; a tripped token
    /// stops the run with [`KlOutcome::interrupted`] set, keeping the best
    /// partition committed so far.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Attaches a metrics registry. Each pass records a
    /// `detect/round/sweep/k_index/kl_pass` span, and the run flushes
    /// `kl/passes`, `kl/moves_committed`, and `kl/bucket_adjusts` counters
    /// on return — all deterministic quantities, so they land in the
    /// byte-compared section of the metrics document.
    pub fn set_obs(&mut self, obs: rejecto_obs::Obs) {
        self.obs = Some(obs);
    }

    /// Pins `node` to whatever region the initial partition assigns it;
    /// it will never be switched (seed pre-placement, §IV-F).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn lock(&mut self, node: NodeId) {
        self.locked[node.index()] = true;
    }

    /// Whether `node` is pinned.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.locked[node.index()]
    }

    /// The scaled objective `den·|F(Ū,U)| − num·|R⟨Ū,U⟩|` of a partition.
    pub fn objective(&self, p: &Partition) -> i64 {
        let den = obj_i64(self.cfg.k.den());
        let num = obj_i64(self.cfg.k.num());
        den * obj_i64(p.cross_friendships()) - num * obj_i64(p.cross_rejections())
    }

    /// Gain (objective reduction) of switching `u` in `p`.
    fn gain(&self, p: &Partition, u: NodeId) -> i64 {
        let (df, dr) = p.switch_delta(self.g, u);
        obj_i64(self.cfg.k.num()) * dr - obj_i64(self.cfg.k.den()) * df
    }

    /// Largest possible |gain| over all nodes, used to size the bucket list.
    fn gain_bound(&self) -> i64 {
        let den = obj_i64(self.cfg.k.den());
        let num = obj_i64(self.cfg.k.num());
        let mut bound = 1i64;
        for u in self.g.nodes() {
            let b = den * obj_i64(self.g.friend_degree(u))
                + num * obj_i64(self.g.rejectors_of(u).len() + self.g.rejected_by(u).len());
            bound = bound.max(b);
        }
        bound
    }

    /// Runs the optimization from `initial` and returns the refined
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not cover exactly the nodes of the graph.
    pub fn run(&self, initial: Partition) -> KlOutcome {
        assert_eq!(initial.len(), self.g.num_nodes(), "partition size mismatch");
        let mut p = initial;
        let bound = self.gain_bound();
        let mut passes = 0usize;
        let mut moves_committed = 0u64;
        let mut bucket_adjusts = 0u64;
        let mut interrupted = false;

        while passes < self.cfg.max_passes {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() || !token.consume_pass() {
                    interrupted = true;
                    break;
                }
            }
            passes += 1;
            let _pass_span = self.obs.as_ref().map(|o| o.span("detect/round/sweep/k_index/kl_pass"));
            let (seq, best_prefix, adjusts) = self.one_pass(&p, bound);
            bucket_adjusts += adjusts;
            match best_prefix {
                Some(end) => {
                    for &(u, _) in &seq[..=end] {
                        p.switch(self.g, NodeId(u));
                        moves_committed += 1;
                    }
                }
                None => break,
            }
        }

        if let Some(obs) = &self.obs {
            let passes_u64 =
                u64::try_from(passes).expect("pass count exceeds u64 range");
            obs.incr("kl/passes", passes_u64);
            obs.incr("kl/moves_committed", moves_committed);
            obs.incr("kl/bucket_adjusts", bucket_adjusts);
        }
        let objective = self.objective(&p);
        KlOutcome { partition: p, objective, passes, moves_committed, interrupted }
    }

    /// Verifies the incremental gain index against recomputation from
    /// scratch: every node still indexed in `bucket` must carry exactly the
    /// gain [`Partition::switch_delta`] derives under `p`, and the bucket's
    /// own chain structure must be sound ([`BucketList::assert_consistent`]).
    /// This is the full-strength version of the spot check `one_pass` makes
    /// at pop time — `O(n·deg)` per call, so it is compiled only under the
    /// `debug-invariants` feature, where `one_pass` runs it after the
    /// initial fill and after every move's neighbor adjustments. Public so
    /// tests can aim it at a deliberately corrupted index.
    ///
    /// # Panics
    ///
    /// Panics on the first indexed node whose gain disagrees with the
    /// recomputed value, or on bucket-chain corruption.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_gain_index(&self, p: &Partition, bucket: &BucketList) {
        bucket.assert_consistent();
        for u in self.g.nodes() {
            if !bucket.contains(u.0) {
                continue;
            }
            let fresh = self.gain(p, u);
            let indexed = bucket.gain_of(u.0);
            assert_eq!(
                indexed, fresh,
                "gain index corrupt: node {u} indexed at {indexed}, recomputed {fresh}"
            );
        }
    }

    /// One greedy pass: returns the full switching sequence with per-move
    /// gains, the index of the best strictly positive prefix (if any), and
    /// the number of incremental gain-bucket adjustments performed.
    fn one_pass(&self, p: &Partition, bound: i64) -> (Vec<(u32, i64)>, Option<usize>, u64) {
        let g = self.g;
        let num = obj_i64(self.cfg.k.num());
        let den = obj_i64(self.cfg.k.den());
        let mut p_tmp = p.clone();
        let mut bucket = BucketList::new(g.num_nodes(), -bound, bound);
        for u in g.nodes() {
            if !self.locked[u.index()] {
                bucket.insert(u.0, self.gain(&p_tmp, u));
            }
        }
        #[cfg(feature = "debug-invariants")]
        self.assert_gain_index(&p_tmp, &bucket);

        let mut seq: Vec<(u32, i64)> = Vec::with_capacity(bucket.len());
        let mut adjusts = 0u64;
        while let Some((u, gain)) = bucket.pop_max() {
            let u_id = NodeId(u);
            debug_assert_eq!(
                gain,
                self.gain(&p_tmp, u_id),
                "stale gain for node {u} — incremental update bug"
            );
            seq.push((u, gain));
            let from = p_tmp.region(u_id);
            let now_in = p_tmp.switch(g, u_id);

            // Incremental gain updates for u's still-indexed neighbors.
            // Friendship edges: the (v, u) term of v's Δfriendship flips.
            for &v in g.friends(u_id) {
                if bucket.contains(v.0) {
                    let t = if p_tmp.region(v) == from { 1 } else { -1 };
                    bucket.adjust(v.0, 2 * den * t);
                    adjusts += 1;
                }
            }
            // u rejected v  ⇒  u is a rejector of v: v's "rejectors in
            // Legit" count changed by ±1.
            for &v in g.rejected_by(u_id) {
                if bucket.contains(v.0) {
                    let da = if now_in == Region::Legit { 1 } else { -1 };
                    let s_v = if p_tmp.region(v) == Region::Legit { 1 } else { -1 };
                    bucket.adjust(v.0, num * s_v * da);
                    adjusts += 1;
                }
            }
            // v rejected u  ⇒  u is in v's rejected set: v's "rejectees in
            // Suspect" count changed by ±1.
            for &v in g.rejectors_of(u_id) {
                if bucket.contains(v.0) {
                    let db = if now_in == Region::Suspect { 1 } else { -1 };
                    let s_v = if p_tmp.region(v) == Region::Legit { 1 } else { -1 };
                    bucket.adjust(v.0, -num * s_v * db);
                    adjusts += 1;
                }
            }
            #[cfg(feature = "debug-invariants")]
            self.assert_gain_index(&p_tmp, &bucket);
        }

        // Best strictly positive cumulative-gain prefix.
        let mut best: Option<usize> = None;
        let mut best_gain = 0i64;
        let mut cum = 0i64;
        for (i, &(_, gain)) in seq.iter().enumerate() {
            cum += gain;
            if cum > best_gain {
                best_gain = cum;
                best = Some(i);
            }
        }
        (seq, best, adjusts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejection::AugmentedGraphBuilder;

    /// 4 legit users in a dense cluster; 3 fakes in a clique; one attack
    /// edge (0–4); legit 1, 2, 3 each rejected fake requests.
    fn spam_scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(7);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_friendship(NodeId(u), NodeId(v));
        }
        for (u, v) in [(4, 5), (4, 6), (5, 6)] {
            b.add_friendship(NodeId(u), NodeId(v));
        }
        b.add_friendship(NodeId(0), NodeId(4)); // attack edge
        b.add_rejection(NodeId(1), NodeId(4));
        b.add_rejection(NodeId(2), NodeId(5));
        b.add_rejection(NodeId(3), NodeId(6));
        b.add_rejection(NodeId(1), NodeId(5));
        b.build()
    }

    fn solver(g: &AugmentedGraph, num: u64, den: u64) -> ExtendedKl<'_> {
        ExtendedKl::new(g, ExtendedKlConfig::new(KParam::new(num, den)))
    }

    #[test]
    fn finds_the_spammer_clique_from_all_legit() {
        let g = spam_scenario();
        let kl = solver(&g, 1, 1);
        let out = kl.run(Partition::all_legit(&g));
        assert_eq!(out.partition.suspects(), vec![NodeId(4), NodeId(5), NodeId(6)]);
        // Cut: 1 attack friendship, 4 rejections → objective 1·1 − 1·4 = −3.
        assert_eq!(out.objective, -3);
    }

    #[test]
    fn recovers_from_inverted_initialization() {
        let g = spam_scenario();
        let kl = solver(&g, 1, 1);
        // Start with the LEGIT side marked suspect.
        let init = Partition::from_fn(&g, |n| {
            if n.0 <= 3 {
                Region::Suspect
            } else {
                Region::Legit
            }
        });
        let out = kl.run(init);
        assert_eq!(out.partition.suspects(), vec![NodeId(4), NodeId(5), NodeId(6)]);
    }

    #[test]
    fn objective_never_worsens_across_commits() {
        let g = spam_scenario();
        let kl = solver(&g, 3, 2);
        let init = Partition::all_legit(&g);
        let before = kl.objective(&init);
        let out = kl.run(init);
        assert!(out.objective <= before, "{} > {before}", out.objective);
    }

    #[test]
    fn small_k_leaves_graph_uncut() {
        // With k tiny, rejections barely count: the empty cut (objective 0)
        // stays optimal and nothing is flagged.
        let g = spam_scenario();
        let kl = solver(&g, 1, 100);
        let out = kl.run(Partition::all_legit(&g));
        assert_eq!(out.partition.suspect_count(), 0);
        assert_eq!(out.objective, 0);
    }

    #[test]
    fn locked_seed_is_never_switched() {
        let g = spam_scenario();
        let mut kl = solver(&g, 1, 1);
        // Pin fake node 4 to the Legit region (a deliberately bad seed):
        kl.lock(NodeId(4));
        let out = kl.run(Partition::all_legit(&g));
        assert_eq!(out.partition.region(NodeId(4)), Region::Legit);
        assert!(kl.is_locked(NodeId(4)));
        // The other two fakes are still separable.
        assert!(out.partition.suspects().contains(&NodeId(5)));
        assert!(out.partition.suspects().contains(&NodeId(6)));
    }

    #[test]
    fn reports_pass_and_move_counts() {
        let g = spam_scenario();
        let kl = solver(&g, 1, 1);
        let out = kl.run(Partition::all_legit(&g));
        assert!(out.passes >= 1);
        assert!(out.moves_committed >= 3);
    }

    #[test]
    fn obs_counters_match_the_reported_outcome() {
        let g = spam_scenario();
        let mut kl = solver(&g, 1, 1);
        let obs = rejecto_obs::Obs::new();
        kl.set_obs(obs.clone());
        let out = kl.run(Partition::all_legit(&g));
        let passes = u64::try_from(out.passes).expect("tiny pass count");
        assert_eq!(obs.counter("kl/passes"), passes);
        assert_eq!(obs.counter("kl/moves_committed"), out.moves_committed);
        assert_eq!(obs.span_count("detect/round/sweep/k_index/kl_pass"), passes);
        assert!(
            obs.counter("kl/bucket_adjusts") > 0,
            "a committing run must have adjusted neighbor gains"
        );
    }

    #[test]
    fn tripped_token_interrupts_before_the_first_pass() {
        let g = spam_scenario();
        let mut kl = solver(&g, 1, 1);
        let token = CancelToken::new();
        token.cancel();
        kl.set_cancel(token);
        let out = kl.run(Partition::all_legit(&g));
        assert!(out.interrupted);
        assert_eq!(out.passes, 0);
        assert_eq!(out.moves_committed, 0);
        // Best-so-far state is the untouched initial partition.
        assert_eq!(out.partition.suspect_count(), 0);
    }

    #[test]
    fn pass_budget_of_one_commits_only_the_first_pass() {
        let g = spam_scenario();

        let mut unlimited = solver(&g, 1, 1);
        let free = CancelToken::new();
        unlimited.set_cancel(free.clone());
        let full = unlimited.run(Partition::all_legit(&g));
        assert!(!full.interrupted, "unlimited budget must not interrupt");
        assert_eq!(full.partition.suspects(), vec![NodeId(4), NodeId(5), NodeId(6)]);

        let mut kl = solver(&g, 1, 1);
        let token = CancelToken::new();
        token.set_pass_budget(1);
        kl.set_cancel(token.clone());
        let out = kl.run(Partition::all_legit(&g));
        assert!(out.passes <= 1);
        // Either the run converged in one pass, or it was interrupted and
        // says so.
        assert!(!out.interrupted || token.is_cancelled());
    }

    #[test]
    fn isolated_nodes_stay_legit() {
        let mut b = AugmentedGraphBuilder::new(3);
        b.add_rejection(NodeId(0), NodeId(1));
        let g = b.build();
        let kl = solver(&g, 2, 1);
        let out = kl.run(Partition::all_legit(&g));
        // Node 1 is rejected → suspect; node 2 is isolated → untouched.
        assert_eq!(out.partition.suspects(), vec![NodeId(1)]);
    }

    #[test]
    fn rejections_inside_suspect_region_do_not_pay() {
        // Two fakes rejecting each other should not form a "cut" worth
        // taking when there are no legit-to-fake rejections.
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_rejection(NodeId(2), NodeId(3));
        b.add_rejection(NodeId(3), NodeId(2));
        b.add_friendship(NodeId(2), NodeId(3));
        let g = b.build();
        let kl = solver(&g, 1, 1);
        let out = kl.run(Partition::all_legit(&g));
        // Splitting {2,3} pays one cross rejection but also cuts their
        // friendship: objective 1 − 1 = 0, not an improvement... but
        // moving BOTH into suspect pays nothing and gains nothing either.
        // Either way nodes 0, 1 must remain legit.
        assert_eq!(out.partition.region(NodeId(0)), Region::Legit);
        assert_eq!(out.partition.region(NodeId(1)), Region::Legit);
    }
}
