//! The classic Kernighan–Lin bisection heuristic (reference
//! implementation).
//!
//! This is the algorithm the paper extends (§IV-C, Figure 7): bipartition an
//! *undirected, unweighted* graph into two parts of fixed sizes while
//! minimizing cross-part edges, by repeatedly interchanging node **pairs**
//! in greedy max-gain order and committing the best prefix.
//!
//! It is kept for two purposes: as an executable specification that the
//! extended variant's tests compare behavior against, and for the ablation
//! bench contrasting pair-interchange with single-node switching. Pair
//! selection uses the standard `O(n)`-per-step simplification (best `a` by
//! gain, then best partner `b`), so the implementation targets moderate
//! graph sizes.

use socialgraph::{Graph, NodeId};

/// Result of [`bisect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    /// `side[u]` is true when node `u` landed in part B.
    pub side: Vec<bool>,
    /// Number of edges crossing the cut.
    pub cut_edges: u64,
    /// Optimization passes performed.
    pub passes: usize,
}

/// Counts edges crossing the cut described by `side`.
///
/// # Panics
///
/// Panics if `side.len() != g.num_nodes()`.
pub fn cut_size(g: &Graph, side: &[bool]) -> u64 {
    assert_eq!(side.len(), g.num_nodes(), "side vector has wrong length");
    let crossing = g.edges().filter(|&(u, v)| side[u.index()] != side[v.index()]).count();
    u64::try_from(crossing).expect("edge count fits in u64")
}

/// The `D` value of classic KL: external minus internal degree.
fn d_value(g: &Graph, side: &[bool], u: NodeId) -> i64 {
    let mut d = 0i64;
    for &v in g.neighbors(u) {
        if side[v.index()] != side[u.index()] {
            d += 1;
        } else {
            d -= 1;
        }
    }
    d
}

/// Classic KL bisection refining an initial assignment.
///
/// `initial[u] == false` places `u` in part A, `true` in part B; part sizes
/// are preserved exactly (pair interchanges only). `max_passes` caps the
/// outer loop.
///
/// # Panics
///
/// Panics if `initial.len() != g.num_nodes()` or either part is empty.
///
/// ```
/// use socialgraph::Graph;
/// use kl::classic::bisect;
///
/// // Two triangles joined by one bridge: the natural bisection cuts 1 edge.
/// let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]);
/// // Deliberately bad start: {0,1,3} vs {2,4,5}.
/// let init = vec![false, false, true, false, true, true];
/// let out = bisect(&g, init, 8);
/// assert_eq!(out.cut_edges, 1);
/// ```
pub fn bisect(g: &Graph, initial: Vec<bool>, max_passes: usize) -> Bisection {
    assert_eq!(initial.len(), g.num_nodes(), "initial assignment has wrong length");
    let size_b = initial.iter().filter(|&&s| s).count();
    assert!(size_b > 0 && size_b < initial.len(), "both parts must be non-empty"); // xtask-allow: no-panic: cold entry validation of a caller-supplied assignment, not a sweep path

    let mut side = initial;
    let mut passes = 0usize;

    while passes < max_passes {
        passes += 1;
        let mut d: Vec<i64> = g.nodes().map(|u| d_value(g, &side, u)).collect();
        let mut locked = vec![false; g.num_nodes()];
        // The tentative swap sequence with per-swap gains.
        let mut seq: Vec<(NodeId, NodeId, i64)> = Vec::new();
        let mut tmp_side = side.clone();

        loop {
            // Best unlocked node of part A by D value.
            let a = g
                .nodes()
                .filter(|u| !locked[u.index()] && !tmp_side[u.index()])
                .max_by_key(|u| d[u.index()]);
            let Some(a) = a else { break };
            // Best partner in part B, accounting for a shared edge.
            let b = g
                .nodes()
                .filter(|u| !locked[u.index()] && tmp_side[u.index()])
                .max_by_key(|&u| d[u.index()] - 2 * i64::from(g.has_edge(a, u)));
            let Some(b) = b else { break };

            let gain = d[a.index()] + d[b.index()] - 2 * i64::from(g.has_edge(a, b));
            seq.push((a, b, gain));
            locked[a.index()] = true;
            locked[b.index()] = true;
            tmp_side[a.index()] = true;
            tmp_side[b.index()] = false;

            // Standard D updates for unlocked neighbors.
            for (moved, joined_b) in [(a, true), (b, false)] {
                for &x in g.neighbors(moved) {
                    if locked[x.index()] {
                        continue;
                    }
                    // x gains if `moved` left x's side, loses if it joined.
                    let now_same = tmp_side[x.index()] == joined_b;
                    d[x.index()] += if now_same { -2 } else { 2 };
                }
            }
        }

        // Best positive prefix of cumulative gain.
        let mut best: Option<usize> = None;
        let mut best_gain = 0i64;
        let mut cum = 0i64;
        for (i, &(_, _, gain)) in seq.iter().enumerate() {
            cum += gain;
            if cum > best_gain {
                best_gain = cum;
                best = Some(i);
            }
        }
        match best {
            Some(end) => {
                for &(a, b, _) in &seq[..=end] {
                    side[a.index()] = true;
                    side[b.index()] = false;
                }
            }
            None => break,
        }
    }

    let cut_edges = cut_size(g, &side);
    Bisection { side, cut_edges, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialgraph::generators::WattsStrogatz;

    fn two_cliques(k: usize) -> Graph {
        // Two k-cliques joined by a single bridge edge.
        let n = 2 * k;
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u as u32, v as u32));
                edges.push(((u + k) as u32, (v + k) as u32));
            }
        }
        edges.push((0, k as u32));
        Graph::from_edges(n, edges)
    }

    #[test]
    fn recovers_planted_bisection() {
        let g = two_cliques(5);
        // Scrambled initial assignment with balanced sizes.
        let init = vec![false, true, false, true, false, true, false, true, false, true];
        let out = bisect(&g, init, 10);
        assert_eq!(out.cut_edges, 1);
        // All of clique 1 on one side.
        let s0 = out.side[0];
        for u in 0..5 {
            assert_eq!(out.side[u], s0);
        }
    }

    #[test]
    fn preserves_part_sizes() {
        let g = two_cliques(4);
        let init = vec![false, true, false, true, false, true, false, true];
        let out = bisect(&g, init, 10);
        assert_eq!(out.side.iter().filter(|&&s| s).count(), 4);
    }

    #[test]
    fn never_worsens_the_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = WattsStrogatz::new(60, 4, 0.2).generate(&mut rng);
        let mut init = vec![false; 60];
        let mut idx: Vec<usize> = (0..60).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(30) {
            init[i] = true;
        }
        let before = cut_size(&g, &init);
        let out = bisect(&g, init, 10);
        assert!(out.cut_edges <= before);
    }

    #[test]
    fn cut_size_counts_cross_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cut_size(&g, &[false, false, true, true]), 1);
        assert_eq!(cut_size(&g, &[false, true, false, true]), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_part() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let _ = bisect(&g, vec![false, false], 4);
    }
}
