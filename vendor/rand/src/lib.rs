//! Offline, API-compatible stub of the parts of `rand` 0.8 this workspace
//! uses. The build environment has no crates.io access, so the real crate
//! cannot be fetched; everything here is deterministic and seeded — there
//! is deliberately no `thread_rng()`, which the repo's own static analysis
//! (`cargo xtask check`) bans anyway.
#![forbid(unsafe_code)]

/// Core random-number generation interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, mirroring the
    /// upstream default so seeded call sites stay deterministic.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty float range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty float range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling/choosing, as in `rand::seq`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, identical element-visit order on every platform.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64 core). Stands in
    /// for `rand::rngs::StdRng`; never auto-seeded from the OS.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = super::rngs::StdRng::seed_from_u64(7);
        let mut b = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = super::rngs::StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
