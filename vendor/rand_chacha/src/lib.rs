//! Offline stand-in for `rand_chacha`. Implements the actual ChaCha
//! stream cipher (8 rounds) as a deterministic, seedable generator. The
//! exact output stream is not bit-identical to the upstream crate — the
//! workspace only ever compares runs against *itself*, so what matters is
//! that the stream is fixed for a fixed seed on every platform.
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, 64-bit block counter, zero nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // words 14/15: zero nonce
        let input = state;
        for _ in 0..4 {
            // one double round = column round + diagonal round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn output_is_not_the_raw_key_schedule() {
        // The keystream must mix: consecutive words should not be equal.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::BTreeSet<u32> = words.iter().copied().collect();
        assert!(distinct.len() > 60, "keystream looks degenerate: {words:?}");
    }
}
