//! Offline stub of `criterion`. Provides the macro/group/bencher surface
//! the workspace's benches use, timing each routine with `std::time`
//! and printing a one-line median estimate — no statistics engine, no
//! HTML reports, but `cargo bench` runs end to end.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        let per_iter = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iterations as u32
        };
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iters)",
            format!("{}/{}", self.name, id),
            per_iter,
            b.iterations
        );
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _parent: self }
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).run(String::new(), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut setups = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| 0u32,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
