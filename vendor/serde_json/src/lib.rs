//! Offline stub of `serde_json`: a JSON value type, a recursive-descent
//! parser, compact serialization, and the `json!` macro — the exact
//! surface the workspace's experiment harnesses and CLI use for their
//! JSONL result rows.
#![forbid(unsafe_code)]

use std::fmt;

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

/// A parsed JSON document. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => serde::Serialize::serialize_json(n, out),
        Value::String(s) => serde::escape_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                serde::escape_str(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        write_value(self, out);
    }
}

/// Serialize any [`serde::Serialize`] type to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Round-trip any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    let mut out = String::new();
    value.serialize_json(&mut out);
    parse_str(&out).unwrap_or(Value::Null)
}

/// Target types of [`from_str`]; only [`Value`] is supported by the stub.
pub trait FromJson: Sized {
    fn from_json_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    T::from_json_value(parse_str(s)?)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's own output; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected ',' or '}'")),
            }
        }
    }
}

/// Builds a [`Value`] in place. Supports the object/array/expression forms
/// the workspace uses; expression values go through [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e1}"#;
        let v: Value = from_str(src).expect("parse");
        assert_eq!(v["a"].as_f64(), Some(1.0));
        assert_eq!(v["b"][2].as_str(), Some("x\n"));
        assert_eq!(v["c"].as_f64(), Some(-25.0));
        let back = v.to_string();
        let v2: Value = from_str(&back).expect("reparse");
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_builds_objects() {
        let ids = vec![1u32, 2, 3];
        let v = json!({
            "round": 4usize,
            "rate": 0.25f64,
            "nodes": ids,
        });
        assert_eq!(v["round"].as_u64(), Some(4));
        assert!(v["rate"].is_number());
        assert_eq!(v["nodes"][1].as_u64(), Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn missing_key_indexes_to_null() {
        let v = json!({"a": 1u32});
        assert!(v["nope"].is_null());
    }
}
