//! Offline stub of `serde_derive`. Supports `#[derive(Serialize)]` on
//! named-field structs (the only shape this workspace derives), parsing
//! the token stream by hand so no syn/quote dependency is needed.
#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts the field identifiers of a named-field struct body.
///
/// Walks the brace group's top-level tokens: skips `#[...]` attributes and
/// visibility modifiers, records the identifier before each top-level `:`,
/// then skips the type (tracking `<...>` nesting so commas inside generics
/// don't split fields).
fn named_fields(body: &proc_macro::Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // Field start: attributes, then visibility, then the name.
        let mut name: Option<String> = None;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    // attribute: consume the following [...] group
                    let _ = tokens.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    // visibility, possibly pub(crate): consume a paren group
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    break;
                }
                _ => {}
            }
        }
        let Some(name) = name else { break };
        // Expect `:` then skip the type up to a top-level comma.
        let mut angle_depth: i32 = 0;
        let mut last_punct = ' ';
        let mut saw_colon = false;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if !saw_colon {
                        if c == ':' {
                            saw_colon = true;
                        }
                    } else {
                        match c {
                            '<' => angle_depth += 1,
                            '>' if last_punct != '-' => angle_depth -= 1,
                            ',' if angle_depth == 0 => break,
                            _ => {}
                        }
                    }
                    last_punct = c;
                }
                _ => last_punct = ' ',
            }
        }
        fields.push(name);
    }
    fields
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter();
    // Find `struct <Name> { ... }`, skipping attributes/visibility/doc.
    let mut struct_name: Option<String> = None;
    let mut body: Option<proc_macro::Group> = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    struct_name = Some(name.to_string());
                }
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g);
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    let (Some(name), Some(body)) = (struct_name, body) else {
        return "compile_error!(\"serde_derive stub supports only named-field structs\");"
            .parse()
            .expect("error tokens parse");
    };
    let fields = named_fields(&body);
    let mut writes = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            writes.push_str("out.push(',');");
        }
        writes.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");serde::Serialize::serialize_json(&self.{f}, out);"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
            fn serialize_json(&self, out: &mut String) {{\n\
                out.push('{{'); {writes} out.push('}}');\n\
            }}\n\
        }}"
    )
    .parse()
    .expect("generated impl parses")
}
