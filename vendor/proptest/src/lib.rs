//! Offline stub of `proptest`, covering the strategy combinators and the
//! `proptest!` macro surface this workspace's property tests use. Inputs
//! are generated from a fixed-seed ChaCha8 stream, so every run explores
//! the same cases, so failures are reproducible by design. Shrinking is
//! not implemented; a failing case panics with its assertion message.
#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod prelude {
    pub use crate::strategy::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, ProptestConfig, Strategy, TestRng};

/// Like `assert!` but named per the proptest API. Panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type, by boxing each arm.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by test functions with
/// `pat in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // One deterministic stream per (test, case) pair.
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    let ($($pat,)+) = (
                        $( $crate::Strategy::generate(&($strat), &mut __rng) ),+ ,
                    );
                    // Upstream proptest lets bodies `return Ok(())` early;
                    // run the body in a Result-returning closure to match.
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(message) = outcome {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
}
