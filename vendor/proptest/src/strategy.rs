//! Strategy combinators for the proptest stub.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps the whole workspace's
        // property suite fast while still exercising plenty of inputs.
        ProptestConfig { cases: 96 }
    }
}

/// Deterministic input stream: ChaCha8 keyed by (test name, case index).
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps streams distinct across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice across boxed arms (`prop_oneof!`).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, i8, i16, i32);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Vector sizes accepted by [`vec`]: a fixed count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty proptest size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo
            + (rng.next_u64() % (self.size.hi_exclusive - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_the_rng() {
        let strat = (1usize..4).prop_flat_map(|n| vec(0u32..10, n..n + 1));
        let mut rng = TestRng::for_case("flat", 0);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn streams_are_deterministic_per_case() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 8);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
