//! Offline stub of `crossbeam`, exposing the `channel` module surface the
//! dataflow master/worker cluster uses (implemented over `std::sync::mpsc`)
//! and the `thread` module's scoped-spawn surface the MAAR sweep pool uses
//! (implemented over `std::thread::scope`).
#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads: spawn workers that may borrow from the caller's
    //! stack, with a guarantee that every worker is joined before `scope`
    //! returns.
    //!
    //! Unlike historical `crossbeam::thread::scope`, which returned a
    //! `Result` carrying child panics, this stub forwards to
    //! `std::thread::scope`, which re-raises a child panic on the caller's
    //! thread after joining the rest — strictly simpler for callers that
    //! treat worker panics as fatal (all of this workspace).

    /// Runs `f` with a [`std::thread::Scope`]; every thread spawned on the
    /// scope is joined before this returns. A child panic propagates to
    /// the caller after all other children have been joined.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_workers_can_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker join")).sum::<u64>()
            });
            assert_eq!(sum, 10);
        }
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half; clonable like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half (single consumer in this stub).
    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..10 {
                    tx2.send(i).expect("send");
                }
            });
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(rx.recv().expect("recv"));
            }
            h.join().expect("join");
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_after_disconnect_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
