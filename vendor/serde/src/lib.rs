//! Offline stub of `serde`, reduced to the one capability this workspace
//! uses: turning row structs into JSON text. Instead of serde's full
//! data-model indirection there is a single trait that appends compact
//! JSON to a buffer; `serde_json` and the `Serialize` derive both target
//! it directly.
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Append `self` as compact JSON onto `out`.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                let v = *self as f64;
                if v.is_finite() {
                    // `{}` prints integral floats without a decimal point,
                    // which is still valid JSON.
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// JSON string escaping shared with the derive output and `serde_json`.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        escape_str(&self.to_string(), out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
    out: &mut String,
) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[test]
    fn primitives_render_as_json() {
        let mut s = String::new();
        42u32.serialize_json(&mut s);
        s.push(' ');
        (-3i64).serialize_json(&mut s);
        s.push(' ');
        0.5f64.serialize_json(&mut s);
        s.push(' ');
        true.serialize_json(&mut s);
        assert_eq!(s, "42 -3 0.5 true");
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        "a\"b\\c\n".serialize_json(&mut s);
        assert_eq!(s, r#""a\"b\\c\n""#);
    }

    #[test]
    fn vectors_and_options_nest() {
        let mut s = String::new();
        vec![Some(1u32), None, Some(3)].serialize_json(&mut s);
        assert_eq!(s, "[1,null,3]");
    }
}
